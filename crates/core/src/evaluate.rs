//! Whole-network architecture evaluation: the machinery behind Table 2.

use std::fmt;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{par_map, CancelToken, NetworkPerf, SimOptions, Simulator};

/// Simulation of one network on the hybrid (Squeezelerator) architecture
/// and on the two fixed-dataflow references.
#[derive(Debug, Clone)]
pub struct ArchitectureComparison {
    /// Network name.
    pub network: String,
    /// Per-layer-best (Squeezelerator) run.
    pub hybrid: NetworkPerf,
    /// Fixed weight-stationary reference run.
    pub ws: NetworkPerf,
    /// Fixed output-stationary reference run.
    pub os: NetworkPerf,
    energy_model: EnergyModel,
}

impl ArchitectureComparison {
    /// Simulates `network` on all three architectures with a fresh
    /// memoizing [`Simulator`]. See [`Self::evaluate_with`].
    pub fn evaluate(
        network: &Network,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        energy_model: EnergyModel,
    ) -> Self {
        Self::evaluate_with(&Simulator::new(), network, cfg, opts, energy_model)
    }

    /// Simulates `network` on all three architectures through `sim`.
    ///
    /// The three runs share the handle's cache: the fixed WS and OS
    /// reference runs replay exactly the per-layer simulations the hybrid
    /// run already performed, so with a caching `sim` they are answered
    /// almost entirely from memo entries.
    pub fn evaluate_with(
        sim: &Simulator,
        network: &Network,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        energy_model: EnergyModel,
    ) -> Self {
        Self::evaluate_cancellable_with(
            sim,
            network,
            cfg,
            opts,
            energy_model,
            &CancelToken::never(),
        )
        .unwrap_or_else(|| unreachable!("a never-cancelled token cannot cancel"))
    }

    /// [`Self::evaluate_with`] with cooperative cancellation: `cancel`
    /// is polled before each of the three whole-network simulations, so
    /// a simulation that starts also finishes. Returns `None` when the
    /// token fired before all three ran — a cancelled comparison has no
    /// partial value (every Table-2 column needs all three runs).
    pub fn evaluate_cancellable_with(
        sim: &Simulator,
        network: &Network,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        energy_model: EnergyModel,
        cancel: &CancelToken,
    ) -> Option<Self> {
        let run = |policy| {
            if cancel.is_cancelled() {
                return None;
            }
            Some(sim.simulate_network(network, cfg, policy, opts))
        };
        let hybrid = run(DataflowPolicy::PerLayer)?;
        let ws = run(DataflowPolicy::Fixed(Dataflow::WeightStationary))?;
        let os = run(DataflowPolicy::Fixed(Dataflow::OutputStationary))?;
        let cmp = Self { network: network.name().to_owned(), hybrid, ws, os, energy_model };
        if sim.tracer().is_enabled() {
            let mut track = sim.tracer().track(format!("cmp:{}", network.name()));
            track.leaf(
                network.name(),
                codesign_trace::Category::Compare,
                cmp.hybrid.total_cycles(),
                &[
                    ("hybrid.cycles", cmp.hybrid.total_cycles()),
                    ("ws.cycles", cmp.ws.total_cycles()),
                    ("os.cycles", cmp.os.total_cycles()),
                ],
            );
        }
        Some(cmp)
    }

    /// Hybrid speedup over the fixed-OS reference (Table 2, "Speedup vs
    /// OS").
    pub fn speedup_vs_os(&self) -> f64 {
        self.os.total_cycles() as f64 / self.hybrid.total_cycles() as f64
    }

    /// Hybrid speedup over the fixed-WS reference (Table 2, "Speedup vs
    /// WS").
    pub fn speedup_vs_ws(&self) -> f64 {
        self.ws.total_cycles() as f64 / self.hybrid.total_cycles() as f64
    }

    /// Hybrid energy reduction vs the fixed-OS reference, as a fraction
    /// (Table 2 prints percentages; negative means the hybrid spends
    /// more).
    pub fn energy_reduction_vs_os(&self) -> f64 {
        1.0 - self.hybrid.total_energy(&self.energy_model)
            / self.os.total_energy(&self.energy_model)
    }

    /// Hybrid energy reduction vs the fixed-WS reference, as a fraction.
    pub fn energy_reduction_vs_ws(&self) -> f64 {
        1.0 - self.hybrid.total_energy(&self.energy_model)
            / self.ws.total_energy(&self.energy_model)
    }

    /// The energy model used.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }
}

impl fmt::Display for ArchitectureComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2}x vs OS, {:.2}x vs WS, energy {:+.0}% / {:+.0}%",
            self.network,
            self.speedup_vs_os(),
            self.speedup_vs_ws(),
            100.0 * self.energy_reduction_vs_os(),
            100.0 * self.energy_reduction_vs_ws()
        )
    }
}

/// Relative speed and energy between two (network, architecture) runs —
/// the §4.2 headline comparisons (SqueezeNext vs SqueezeNet, vs AlexNet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeResult {
    /// `baseline cycles / subject cycles` (> 1 means the subject is
    /// faster).
    pub speedup: f64,
    /// `baseline energy / subject energy` (> 1 means the subject is more
    /// efficient).
    pub energy_gain: f64,
}

/// Compares a subject network against a baseline, both on the hybrid
/// architecture, with a fresh memoizing [`Simulator`].
pub fn compare_networks(
    subject: &Network,
    baseline: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> RelativeResult {
    compare_networks_with(&Simulator::new(), subject, baseline, cfg, opts, energy_model)
}

/// Compares a subject network against a baseline, both on the hybrid
/// architecture, through `sim`.
pub fn compare_networks_with(
    sim: &Simulator,
    subject: &Network,
    baseline: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> RelativeResult {
    let s = sim.simulate_network(subject, cfg, DataflowPolicy::PerLayer, opts);
    let b = sim.simulate_network(baseline, cfg, DataflowPolicy::PerLayer, opts);
    RelativeResult {
        speedup: b.total_cycles() as f64 / s.total_cycles() as f64,
        energy_gain: b.total_energy(energy_model) / s.total_energy(energy_model),
    }
}

/// Evaluates every network in `networks` on all three architectures,
/// fanning the networks out across `jobs` worker threads (`0` = one per
/// core) through the shared `sim` handle. Results come back in input
/// order — this is the Table 2 generator.
pub fn compare_all(
    sim: &Simulator,
    networks: &[Network],
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: EnergyModel,
    jobs: usize,
) -> Vec<ArchitectureComparison> {
    par_map(jobs, networks, |_, net| {
        ArchitectureComparison::evaluate_with(sim, net, cfg, opts, energy_model)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions, EnergyModel) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default(), EnergyModel::default())
    }

    #[test]
    fn hybrid_dominates_both_references() {
        let (cfg, opts, em) = setup();
        for net in [zoo::squeezenet_v1_1(), zoo::tiny_darknet()] {
            let c = ArchitectureComparison::evaluate(&net, &cfg, opts, em);
            assert!(c.speedup_vs_os() >= 1.0, "{}", net.name());
            assert!(c.speedup_vs_ws() >= 1.0, "{}", net.name());
        }
    }

    #[test]
    fn mobilenet_gains_most_vs_ws() {
        // Table 2's strongest row: MobileNet vs WS is 6.35x in the paper.
        let (cfg, opts, em) = setup();
        let c = ArchitectureComparison::evaluate(&zoo::mobilenet_v1(), &cfg, opts, em);
        assert!(c.speedup_vs_ws() > 4.0, "got {:.2}", c.speedup_vs_ws());
        assert!(c.speedup_vs_os() > 1.5, "got {:.2}", c.speedup_vs_os());
    }

    #[test]
    fn alexnet_gains_least() {
        // FC-dominated AlexNet benefits least from dataflow flexibility.
        let (cfg, opts, em) = setup();
        let alex = ArchitectureComparison::evaluate(&zoo::alexnet(), &cfg, opts, em);
        let mobile = ArchitectureComparison::evaluate(&zoo::mobilenet_v1(), &cfg, opts, em);
        assert!(alex.speedup_vs_ws() < mobile.speedup_vs_ws());
        assert!(alex.speedup_vs_os() < mobile.speedup_vs_os());
        assert!(alex.speedup_vs_os() < 1.5);
    }

    #[test]
    fn squeezenext_beats_squeezenet_headline() {
        // §4.2: "2.59x faster and 2.25x more energy efficient than
        // SqueezeNet 1.0" — our reproduction lands in the same region.
        let (cfg, opts, em) = setup();
        let r = compare_networks(&zoo::squeezenext(), &zoo::squeezenet_v1_0(), &cfg, opts, &em);
        assert!((2.0..3.5).contains(&r.speedup), "speedup = {:.2}", r.speedup);
        assert!((1.8..3.5).contains(&r.energy_gain), "energy = {:.2}", r.energy_gain);
    }

    #[test]
    fn squeezenext_crushes_alexnet_headline() {
        // §4.2: 8.26x faster, 7.5x more efficient than AlexNet.
        let (cfg, opts, em) = setup();
        let r = compare_networks(&zoo::squeezenext(), &zoo::alexnet(), &cfg, opts, &em);
        assert!(r.speedup > 4.5, "speedup = {:.2}", r.speedup);
        assert!(r.energy_gain > 4.5, "energy = {:.2}", r.energy_gain);
    }

    #[test]
    fn compare_all_matches_individual_evaluations_in_order() {
        let (cfg, opts, em) = setup();
        let nets = vec![zoo::squeezenet_v1_1(), zoo::tiny_darknet()];
        let sim = Simulator::new();
        let rows = compare_all(&sim, &nets, &cfg, opts, em, 2);
        assert_eq!(rows.len(), nets.len());
        for (row, net) in rows.iter().zip(&nets) {
            assert_eq!(row.network, net.name());
            let solo = ArchitectureComparison::evaluate(net, &cfg, opts, em);
            assert_eq!(row.hybrid, solo.hybrid);
            assert_eq!(row.ws, solo.ws);
            assert_eq!(row.os, solo.os);
        }
        // All three runs per network share the cache, so the fixed-dataflow
        // replays hit heavily.
        assert!(sim.stats().hit_rate() > 0.5, "{}", sim.stats());
    }

    #[test]
    fn traced_comparison_records_compare_and_sim_tracks() {
        let (cfg, opts, em) = setup();
        let tracer = codesign_trace::Tracer::enabled();
        let sim = Simulator::new().with_tracer(tracer.clone());
        let c = ArchitectureComparison::evaluate_with(&sim, &zoo::tiny_darknet(), &cfg, opts, em);
        let data = tracer.snapshot();
        let cmp = data.tracks.iter().find(|t| t.name.starts_with("cmp:")).expect("compare track");
        assert_eq!(cmp.spans[0].counter("hybrid.cycles"), Some(c.hybrid.total_cycles()));
        assert_eq!(cmp.spans[0].counter("ws.cycles"), Some(c.ws.total_cycles()));
        assert_eq!(cmp.spans[0].counter("os.cycles"), Some(c.os.total_cycles()));
        // The three underlying network runs each published a sim track.
        assert_eq!(data.tracks.iter().filter(|t| t.name.starts_with("sim:")).count(), 3);
    }

    #[test]
    fn cancelled_comparison_returns_none_without_changing_results() {
        let (cfg, opts, em) = setup();
        let net = zoo::tiny_darknet();
        let cancelled = CancelToken::never();
        cancelled.cancel();
        assert!(ArchitectureComparison::evaluate_cancellable_with(
            &Simulator::new(),
            &net,
            &cfg,
            opts,
            em,
            &cancelled
        )
        .is_none());
        let live = ArchitectureComparison::evaluate_cancellable_with(
            &Simulator::new(),
            &net,
            &cfg,
            opts,
            em,
            &CancelToken::never(),
        )
        .expect("never-cancelled token completes");
        let plain = ArchitectureComparison::evaluate(&net, &cfg, opts, em);
        assert_eq!(live.hybrid, plain.hybrid);
        assert_eq!(live.ws, plain.ws);
        assert_eq!(live.os, plain.os);
    }

    #[test]
    fn display_row_mentions_both_ratios() {
        let (cfg, opts, em) = setup();
        let c = ArchitectureComparison::evaluate(&zoo::squeezenet_v1_1(), &cfg, opts, em);
        let s = c.to_string();
        assert!(s.contains("vs OS") && s.contains("vs WS"));
    }
}
