//! Property-based cancellation-determinism tests: for *any* sweep
//! space, chunk size, worker count, and cancel point, the frontier
//! events streamed before a deadline fires are bit-identical to a
//! prefix of the uncancelled run's event stream — and the uncancelled
//! stream itself is independent of `--jobs`. This is the guarantee the
//! server's `"code":"deadline"` error message asserts to clients.

use codesign_arch::EnergyModel;
use codesign_core::{
    sweep_streaming_cancellable_with, sweep_streaming_with, SweepError, SweepEvent, SweepSpace,
};
use codesign_dnn::zoo;
use codesign_sim::{CancelToken, SimOptions, Simulator};
use proptest::prelude::*;

/// Non-empty subset of `all`, drawn by bitmask.
fn subset<const N: usize>(all: [usize; N]) -> impl Strategy<Value = Vec<usize>> {
    (1usize..(1 << N)).prop_map(move |mask| {
        all.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, v)| *v).collect()
    })
}

/// An arbitrary small sweep space. The 256-byte buffer level is
/// deliberately infeasible for every array size, so generated spaces
/// mix `Point` and `Skipped` events.
fn arb_space() -> impl Strategy<Value = SweepSpace> {
    (subset([8, 16, 32]), subset([8, 16]), subset([256, 64 * 1024, 128 * 1024])).prop_map(
        |(array_sizes, rf_depths, buffer_bytes)| SweepSpace {
            array_sizes,
            rf_depths,
            buffer_bytes,
        },
    )
}

fn describe(event: &SweepEvent<'_>) -> String {
    match event {
        SweepEvent::Point { index, point } => format!("{index}:point:{point:?}"),
        SweepEvent::Skipped { index, params } => format!("{index}:skip:{params}"),
        SweepEvent::Failure { index, failure } => format!("{index}:fail:{failure}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cancelled_stream_is_a_prefix_for_any_space_chunk_and_cancel_point(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
        cancel_after in 1usize..=12,
    ) {
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();

        // Reference stream: serial, chunk size 1.
        let mut full = Vec::new();
        sweep_streaming_with(&Simulator::new(), &net, &space, opts, &em, 1, 1, |e| {
            full.push(describe(&e));
        })
        .map_err(|e| TestCaseError::fail(format!("reference sweep failed: {e}")))?;
        prop_assert_eq!(full.len(), space.len());

        // The `--jobs` invariant: worker count changes wall-time, never
        // the event stream.
        let mut fanned = Vec::new();
        sweep_streaming_with(&Simulator::new(), &net, &space, opts, &em, jobs, chunk, |e| {
            fanned.push(describe(&e));
        })
        .map_err(|e| TestCaseError::fail(format!("fanned sweep failed: {e}")))?;
        prop_assert_eq!(&fanned, &full, "jobs={} chunk={}", jobs, chunk);

        // Cancel after `cancel_after` delivered events: whatever was
        // streamed must be a byte-identical prefix of the full run.
        let token = CancelToken::never();
        let mut delivered = Vec::new();
        let result = sweep_streaming_cancellable_with(
            &Simulator::new(),
            &net,
            &space,
            opts,
            &em,
            jobs,
            chunk,
            &token,
            |e| {
                delivered.push(describe(&e));
                if delivered.len() >= cancel_after {
                    token.cancel();
                }
            },
        );
        let tag = format!(
            "space={}pts chunk={chunk} jobs={jobs} cancel_after={cancel_after}",
            space.len()
        );
        prop_assert!(delivered.len() <= full.len(), "over-delivered ({tag})");
        prop_assert_eq!(&delivered[..], &full[..delivered.len()], "not a prefix ({tag})");
        if delivered.len() < full.len() {
            // Cancelled mid-run: typed error, and the cut lands exactly
            // on a chunk boundary (cancellation is polled between
            // chunks, never inside one).
            prop_assert_eq!(result, Err(SweepError::Cancelled), "{}", &tag);
            prop_assert_eq!(delivered.len() % chunk, 0, "mid-chunk cut ({tag})");
        } else {
            prop_assert!(result.is_ok(), "complete run still errored ({tag})");
        }
    }

    #[test]
    fn pre_expired_deadline_cancels_before_any_event(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
    ) {
        // A zero-budget deadline (the server's `deadline_ms:0`) is the
        // degenerate cancel point: the empty prefix, no events at all.
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let mut fired = 0usize;
        let result = sweep_streaming_cancellable_with(
            &Simulator::new(),
            &zoo::tiny_darknet(),
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            jobs,
            chunk,
            &token,
            |_| fired += 1,
        );
        prop_assert_eq!(result, Err(SweepError::Cancelled));
        prop_assert_eq!(fired, 0, "events escaped an already-expired deadline");
    }
}
