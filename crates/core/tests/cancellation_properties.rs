//! Property-based cancellation-determinism tests: for *any* sweep
//! space, chunk size, worker count, and cancel point, the frontier
//! events streamed before a deadline fires are bit-identical to a
//! prefix of the uncancelled run's event stream — and the uncancelled
//! stream itself is independent of `--jobs`. This is the guarantee the
//! server's `"code":"deadline"` error message asserts to clients.

use codesign_arch::EnergyModel;
use codesign_core::{
    best_by_energy_delay, pareto_designs, sweep_frontier_with, sweep_full_with,
    sweep_streaming_cancellable_with, sweep_streaming_with, FrontierConfig, FrontierEvent,
    SweepError, SweepEvent, SweepSpace,
};
use codesign_dnn::zoo;
use codesign_sim::{CancelToken, SimOptions, Simulator};
use proptest::prelude::*;

/// Non-empty subset of `all`, drawn by bitmask.
fn subset<const N: usize>(all: [usize; N]) -> impl Strategy<Value = Vec<usize>> {
    (1usize..(1 << N)).prop_map(move |mask| {
        all.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, v)| *v).collect()
    })
}

/// An arbitrary small sweep space. The 256-byte buffer level is
/// deliberately infeasible for every array size, so generated spaces
/// mix `Point` and `Skipped` events.
fn arb_space() -> impl Strategy<Value = SweepSpace> {
    (subset([8, 16, 32]), subset([8, 16]), subset([256, 64 * 1024, 128 * 1024])).prop_map(
        |(array_sizes, rf_depths, buffer_bytes)| SweepSpace {
            array_sizes,
            rf_depths,
            buffer_bytes,
        },
    )
}

fn describe(event: &SweepEvent<'_>) -> String {
    match event {
        SweepEvent::Point { index, point } => format!("{index}:point:{point:?}"),
        SweepEvent::Skipped { index, params } => format!("{index}:skip:{params}"),
        SweepEvent::Failure { index, failure } => format!("{index}:fail:{failure}"),
    }
}

fn describe_frontier(event: &FrontierEvent<'_>) -> String {
    match event {
        FrontierEvent::Entered { index, point } => format!("{index}:enter:{point:?}"),
        FrontierEvent::Failure { index, failure } => format!("{index}:fail:{failure}"),
        FrontierEvent::Pruned { from, until } => format!("{from}..{until}:pruned"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cancelled_stream_is_a_prefix_for_any_space_chunk_and_cancel_point(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
        cancel_after in 1usize..=12,
    ) {
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();

        // Reference stream: serial, chunk size 1.
        let mut full = Vec::new();
        sweep_streaming_with(&Simulator::new(), &net, &space, opts, &em, 1, 1, |e| {
            full.push(describe(&e));
        })
        .map_err(|e| TestCaseError::fail(format!("reference sweep failed: {e}")))?;
        prop_assert_eq!(full.len(), space.len());

        // The `--jobs` invariant: worker count changes wall-time, never
        // the event stream.
        let mut fanned = Vec::new();
        sweep_streaming_with(&Simulator::new(), &net, &space, opts, &em, jobs, chunk, |e| {
            fanned.push(describe(&e));
        })
        .map_err(|e| TestCaseError::fail(format!("fanned sweep failed: {e}")))?;
        prop_assert_eq!(&fanned, &full, "jobs={} chunk={}", jobs, chunk);

        // Cancel after `cancel_after` delivered events: whatever was
        // streamed must be a byte-identical prefix of the full run.
        let token = CancelToken::never();
        let mut delivered = Vec::new();
        let result = sweep_streaming_cancellable_with(
            &Simulator::new(),
            &net,
            &space,
            opts,
            &em,
            jobs,
            chunk,
            &token,
            |e| {
                delivered.push(describe(&e));
                if delivered.len() >= cancel_after {
                    token.cancel();
                }
            },
        );
        let tag = format!(
            "space={}pts chunk={chunk} jobs={jobs} cancel_after={cancel_after}",
            space.len()
        );
        prop_assert!(delivered.len() <= full.len(), "over-delivered ({tag})");
        prop_assert_eq!(&delivered[..], &full[..delivered.len()], "not a prefix ({tag})");
        if delivered.len() < full.len() {
            // Cancelled mid-run: typed error, and the cut lands exactly
            // on a chunk boundary (cancellation is polled between
            // chunks, never inside one).
            prop_assert_eq!(result, Err(SweepError::Cancelled), "{}", &tag);
            prop_assert_eq!(delivered.len() % chunk, 0, "mid-chunk cut ({tag})");
        } else {
            prop_assert!(result.is_ok(), "complete run still errored ({tag})");
        }
    }

    #[test]
    fn pre_expired_deadline_cancels_before_any_event(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
    ) {
        // A zero-budget deadline (the server's `deadline_ms:0`) is the
        // degenerate cancel point: the empty prefix, no events at all.
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let mut fired = 0usize;
        let result = sweep_streaming_cancellable_with(
            &Simulator::new(),
            &zoo::tiny_darknet(),
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            jobs,
            chunk,
            &token,
            |_| fired += 1,
        );
        prop_assert_eq!(result, Err(SweepError::Cancelled));
        prop_assert_eq!(fired, 0, "events escaped an already-expired deadline");
    }

    /// The streaming frontier pipeline is a drop-in for the batch sweep:
    /// for *any* space, chunk size, worker count, and prune setting, the
    /// final frontier (and best-EDP pick) are bit-identical to
    /// `pareto_designs` + `best_by_energy_delay` over the fully
    /// materialized sweep, the event stream is jobs-invariant, and the
    /// disposition counters partition the grid.
    #[test]
    fn streamed_frontier_matches_batch_pareto_bit_for_bit(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
        prune in any::<bool>(),
    ) {
        check_frontier_matches_batch(&space, chunk, jobs, prune)?;
    }

    /// Cancelling a streaming frontier sweep at any point leaves a
    /// delivered event stream that is a bit-identical prefix of the
    /// uncancelled run's stream (possibly the whole stream, when only
    /// eventless work remained past the cancel point).
    #[test]
    fn cancelled_frontier_stream_is_a_prefix(
        space in arb_space(),
        chunk in 1usize..=5,
        jobs in 1usize..=4,
        prune in any::<bool>(),
        cancel_after in 1usize..=12,
    ) {
        check_cancelled_frontier_prefix(&space, chunk, jobs, prune, cancel_after)?;
    }
}

/// Body of `streamed_frontier_matches_batch_pareto_bit_for_bit`, kept as
/// a plain function so the property entry in `proptest!` stays small.
fn check_frontier_matches_batch(
    space: &SweepSpace,
    chunk: usize,
    jobs: usize,
    prune: bool,
) -> Result<(), TestCaseError> {
    let net = zoo::tiny_darknet();
    let opts = SimOptions::default();
    let em = EnergyModel::default();
    let tag = format!("space={}pts chunk={chunk} jobs={jobs} prune={prune}", space.len());

    let batch = sweep_full_with(&Simulator::new(), &net, space, opts, &em, 0)
        .map_err(|e| TestCaseError::fail(format!("batch sweep failed: {e}")))?;
    let expected = pareto_designs(&batch.points);

    let run = |jobs: usize| {
        let mut events = Vec::new();
        let config = FrontierConfig { jobs, chunk, prune, ..FrontierConfig::default() };
        let outcome = sweep_frontier_with(
            &Simulator::new(),
            &net,
            space,
            opts,
            &em,
            &config,
            &CancelToken::never(),
            |e| events.push(describe_frontier(&e)),
        );
        (outcome, events)
    };
    let (outcome, events) = run(jobs);
    let outcome =
        outcome.map_err(|e| TestCaseError::fail(format!("frontier sweep failed: {e}")))?;

    prop_assert_eq!(&outcome.frontier, &expected, "frontier diverged ({})", &tag);
    prop_assert_eq!(
        outcome.best.as_ref(),
        best_by_energy_delay(&expected),
        "best-EDP diverged ({})",
        &tag
    );
    let c = outcome.counters;
    prop_assert_eq!(c.total as usize, space.len(), "{}", &tag);
    prop_assert_eq!(
        c.evaluated + c.skipped + c.failed + c.pruned,
        c.total,
        "counters must partition the grid ({})",
        &tag
    );
    prop_assert!(c.peak_frontier as usize >= outcome.frontier.len(), "{}", &tag);
    if !prune {
        prop_assert_eq!(c.pruned, 0, "{}", &tag);
        prop_assert_eq!(c.evaluated as usize, batch.points.len(), "{}", &tag);
        prop_assert_eq!(c.failed as usize, batch.failures.len(), "{}", &tag);
        prop_assert_eq!(&outcome.failures, &batch.failures, "{}", &tag);
    }

    // Worker count changes wall-time, never the event stream.
    let (serial_outcome, serial_events) = run(1);
    let serial_outcome =
        serial_outcome.map_err(|e| TestCaseError::fail(format!("serial failed: {e}")))?;
    prop_assert_eq!(&serial_events, &events, "stream not jobs-invariant ({})", &tag);
    prop_assert_eq!(&serial_outcome.frontier, &outcome.frontier, "{}", &tag);
    Ok(())
}

/// Body of `cancelled_frontier_stream_is_a_prefix`, hoisted like above.
fn check_cancelled_frontier_prefix(
    space: &SweepSpace,
    chunk: usize,
    jobs: usize,
    prune: bool,
    cancel_after: usize,
) -> Result<(), TestCaseError> {
    let net = zoo::tiny_darknet();
    let opts = SimOptions::default();
    let em = EnergyModel::default();
    let config = FrontierConfig { jobs, chunk, prune, ..FrontierConfig::default() };
    let tag = format!(
        "space={}pts chunk={chunk} jobs={jobs} prune={prune} cancel_after={cancel_after}",
        space.len()
    );

    let mut full = Vec::new();
    sweep_frontier_with(
        &Simulator::new(),
        &net,
        space,
        opts,
        &em,
        &config,
        &CancelToken::never(),
        |e| full.push(describe_frontier(&e)),
    )
    .map_err(|e| TestCaseError::fail(format!("reference sweep failed: {e}")))?;

    let token = CancelToken::never();
    let mut delivered = Vec::new();
    let result =
        sweep_frontier_with(&Simulator::new(), &net, space, opts, &em, &config, &token, |e| {
            delivered.push(describe_frontier(&e));
            if delivered.len() >= cancel_after {
                token.cancel();
            }
        });
    prop_assert!(delivered.len() <= full.len(), "over-delivered ({})", &tag);
    prop_assert_eq!(&delivered[..], &full[..delivered.len()], "not a prefix ({})", &tag);
    match result {
        // Completed before the cancel point ever fired.
        Ok(_) => prop_assert_eq!(delivered.len(), full.len(), "{}", &tag),
        // Cancelled: possibly after every event was already delivered,
        // when only eventless segments remained.
        Err(e) => prop_assert_eq!(e, SweepError::Cancelled, "{}", &tag),
    }
    Ok(())
}
