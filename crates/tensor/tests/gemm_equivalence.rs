//! The tiled GEMM execution stack against its executable spec: over
//! arbitrary well-formed (input, filters, spec) triples, `conv2d_gemm`
//! must agree **bit-for-bit** with both the naive loop nest
//! (`ops::conv2d`) and the im2col cross-check (`conv2d_im2col`), and the
//! fully-connected GEMM must agree with `ops::fully_connected`. Pinned
//! regressions cover the shapes that route through special paths:
//! depthwise (skips the im2col blowup), grouped, pointwise 1x1,
//! single-pixel outputs, and zero-padding-dominant patches.

use codesign_dnn::{ConvSpec, Kernel, Shape};
use codesign_tensor::gemm::{conv2d_gemm, conv2d_gemm_jobs, fully_connected_gemm};
use codesign_tensor::{conv2d_im2col, Filters, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random well-formed (input, filters, spec) triple, biased toward
/// the special-path shapes: depthwise groups, pointwise kernels, strided
/// and padded windows, and inputs barely larger than the kernel.
fn conv_case() -> impl Strategy<Value = (Tensor, Filters, ConvSpec)> {
    (
        1usize..=4, // groups
        1usize..=3, // channels per group
        1usize..=5, // filters per group
        prop_oneof![Just((1usize, 1usize)), Just((3, 3)), Just((1, 3)), Just((3, 1)), Just((5, 5))],
        1usize..=2,   // stride
        0usize..=2,   // pad
        0usize..=6,   // extra spatial size
        any::<u64>(), // data seed
    )
        .prop_map(|(groups, cg, kg, (kh, kw), stride, pad, extra, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let cin = groups * cg;
            let cout = groups * kg;
            let h = kh.max(kw) + extra;
            let w = kh.max(kw) + extra;
            let input = Tensor::random(Shape::new(cin, h, w), 64, &mut rng);
            let filters = Filters::random(cout, cg, kh, kw, 16, 0.4, &mut rng);
            let spec = ConvSpec {
                out_channels: cout,
                kernel: Kernel::new(kh, kw),
                stride,
                pad_h: pad.min(kh / 2 + 1),
                pad_w: pad.min(kw / 2 + 1),
                groups,
            };
            (input, filters, spec)
        })
}

/// Asserts all three convolution implementations agree bit-for-bit.
fn assert_triple_equal(input: &Tensor, filters: &Filters, spec: &ConvSpec) {
    let naive = codesign_tensor::ops::conv2d(input, filters, spec).unwrap();
    let im2col = conv2d_im2col(input, filters, spec).unwrap();
    let gemm = conv2d_gemm(input, filters, spec).unwrap();
    assert_eq!(naive, im2col, "im2col diverged from the loop nest: {spec:?}");
    assert_eq!(naive, gemm, "GEMM diverged from the loop nest: {spec:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GEMM == loop nest == im2col over arbitrary conv cases.
    #[test]
    fn gemm_matches_both_references((input, filters, spec) in conv_case()) {
        let naive = codesign_tensor::ops::conv2d(&input, &filters, &spec).unwrap();
        let im2col = conv2d_im2col(&input, &filters, &spec).unwrap();
        let gemm = conv2d_gemm(&input, &filters, &spec).unwrap();
        prop_assert_eq!(&naive, &im2col);
        prop_assert_eq!(&naive, &gemm);
    }

    /// The worker count never changes a single bit of the output.
    #[test]
    fn gemm_is_jobs_invariant((input, filters, spec) in conv_case(), jobs in 2usize..=8) {
        let serial = conv2d_gemm_jobs(&input, &filters, &spec, 1).unwrap();
        let parallel = conv2d_gemm_jobs(&input, &filters, &spec, jobs).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// The fully-connected GEMM agrees with the reference matrix-vector
    /// loop for arbitrary flattened sizes.
    #[test]
    fn fc_gemm_matches_reference(n in 1usize..=96, k in 1usize..=48, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::random(Shape::new(n, 1, 1), 64, &mut rng);
        let weights = Filters::random(k, n, 1, 1, 16, 0.4, &mut rng);
        let want = codesign_tensor::ops::fully_connected(&input, &weights).unwrap();
        let got = fully_connected_gemm(&input, &weights).unwrap();
        prop_assert_eq!(want, got);
    }
}

/// Depthwise: groups == channels routes through the dedicated direct
/// path that skips patch packing entirely.
#[test]
fn pinned_depthwise() {
    let mut rng = StdRng::seed_from_u64(101);
    let input = Tensor::random(Shape::new(8, 13, 11), 64, &mut rng);
    let filters = Filters::random(8, 1, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 8,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: 8,
    };
    assert_triple_equal(&input, &filters, &spec);
    // Strided depthwise reduction, MobileNet-style.
    let spec2 = ConvSpec { stride: 2, ..spec };
    assert_triple_equal(&input, &filters, &spec2);
}

/// Grouped but not depthwise: per-group packing and filter windows.
#[test]
fn pinned_grouped() {
    let mut rng = StdRng::seed_from_u64(102);
    let input = Tensor::random(Shape::new(6, 9, 9), 64, &mut rng);
    let filters = Filters::random(9, 2, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 9,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: 3,
    };
    assert_triple_equal(&input, &filters, &spec);
}

/// Pointwise 1x1: rows == channels, no padding, patch matrix is the
/// input itself.
#[test]
fn pinned_pointwise() {
    let mut rng = StdRng::seed_from_u64(103);
    let input = Tensor::random(Shape::new(16, 7, 7), 64, &mut rng);
    let filters = Filters::random(24, 16, 1, 1, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 24,
        kernel: Kernel::square(1),
        stride: 1,
        pad_h: 0,
        pad_w: 0,
        groups: 1,
    };
    assert_triple_equal(&input, &filters, &spec);
}

/// Single-pixel output: one column, the interleaved block is almost all
/// zero-padded tail lanes.
#[test]
fn pinned_single_pixel() {
    let mut rng = StdRng::seed_from_u64(104);
    let input = Tensor::random(Shape::new(4, 3, 3), 64, &mut rng);
    let filters = Filters::random(10, 4, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 10,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 0,
        pad_w: 0,
        groups: 1,
    };
    assert_triple_equal(&input, &filters, &spec);
}

/// Saturation: a single extreme product overflows i32 in both
/// directions; every implementation must saturate at the same rails
/// (one product per output keeps the i64 accumulator itself safe even
/// in debug builds).
#[test]
fn pinned_saturation() {
    let input = Tensor::from_vec(Shape::new(1, 1, 1), vec![i32::MAX]);
    let filters = Filters::from_fn(2, 1, 1, 1, |k, _, _, _| if k == 0 { 2 } else { -2 });
    let spec = ConvSpec {
        out_channels: 2,
        kernel: Kernel::square(1),
        stride: 1,
        pad_h: 0,
        pad_w: 0,
        groups: 1,
    };
    assert_triple_equal(&input, &filters, &spec);
    let gemm = conv2d_gemm(&input, &filters, &spec).unwrap();
    assert_eq!(gemm.as_slice(), &[i32::MAX, i32::MIN]);
}

/// Zero-padding-dominant: a 1x1 spatial input under a 3x3 kernel with
/// full padding — 8 of every 9 patch elements are implicit zeros.
#[test]
fn pinned_zero_padding_dominant() {
    let mut rng = StdRng::seed_from_u64(105);
    let input = Tensor::random(Shape::new(5, 1, 1), 64, &mut rng);
    let filters = Filters::random(7, 5, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 7,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: 1,
    };
    assert_triple_equal(&input, &filters, &spec);
}
