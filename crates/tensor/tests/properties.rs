//! Property-based tests on the functional substrate: the reference
//! convolution must satisfy the algebraic laws of a convolution, and the
//! two independent implementations must always agree.

use codesign_dnn::{ConvSpec, Kernel, Shape};
use codesign_tensor::{conv2d_im2col, Filters, Tensor};
use proptest::prelude::*;

/// A random well-formed (input, filters, spec) triple.
fn conv_case() -> impl Strategy<Value = (Tensor, Filters, ConvSpec)> {
    (
        1usize..=3, // groups
        1usize..=3, // channels per group
        1usize..=4, // filters per group
        prop_oneof![Just((1usize, 1usize)), Just((3, 3)), Just((1, 3)), Just((3, 1)), Just((5, 5))],
        1usize..=2,   // stride
        0usize..=2,   // pad
        0usize..=5,   // extra spatial size
        any::<u64>(), // data seed
    )
        .prop_map(|(groups, cg, kg, (kh, kw), stride, pad, extra, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            let cin = groups * cg;
            let cout = groups * kg;
            let h = kh.max(kw) + extra;
            let w = kh.max(kw) + extra;
            let input = Tensor::random(Shape::new(cin, h, w), 64, &mut rng);
            let filters = Filters::random(cout, cg, kh, kw, 16, 0.4, &mut rng);
            let spec = ConvSpec {
                out_channels: cout,
                kernel: Kernel::new(kh, kw),
                stride,
                pad_h: pad.min(kh / 2 + 1),
                pad_w: pad.min(kw / 2 + 1),
                groups,
            };
            (input, filters, spec)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The loop-nest and im2col implementations agree exactly.
    #[test]
    fn conv_implementations_agree((input, filters, spec) in conv_case()) {
        let a = codesign_tensor::ops::conv2d(&input, &filters, &spec).unwrap();
        let b = conv2d_im2col(&input, &filters, &spec).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Convolution is linear in the input: conv(x + y) == conv(x) + conv(y).
    #[test]
    fn conv_is_linear_in_input((input, filters, spec) in conv_case(), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let other = Tensor::random(input.shape(), 64, &mut rng);
        let sum = codesign_tensor::ops::eltwise_add(&input, &other).unwrap();

        let conv = |t: &Tensor| codesign_tensor::ops::conv2d(t, &filters, &spec).unwrap();
        let lhs = conv(&sum);
        let rhs = codesign_tensor::ops::eltwise_add(&conv(&input), &conv(&other)).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Zero input produces zero output; zero filters produce zero output.
    #[test]
    fn conv_annihilates_zero((input, filters, spec) in conv_case()) {
        let zero_in = Tensor::zeros(input.shape());
        let out = codesign_tensor::ops::conv2d(&zero_in, &filters, &spec).unwrap();
        prop_assert!(out.as_slice().iter().all(|&v| v == 0));

        let zero_f = Filters::zeros(
            filters.out_channels(),
            filters.in_channels(),
            filters.kernel_height(),
            filters.kernel_width(),
        );
        let out = codesign_tensor::ops::conv2d(&input, &zero_f, &spec).unwrap();
        prop_assert!(out.as_slice().iter().all(|&v| v == 0));
    }

    /// Scaling every filter tap by -1 negates the output.
    #[test]
    fn conv_negation((input, filters, spec) in conv_case()) {
        let neg = Filters::from_fn(
            filters.out_channels(),
            filters.in_channels(),
            filters.kernel_height(),
            filters.kernel_width(),
            |k, c, dy, dx| -filters.tap(k, c, dy, dx),
        );
        let pos = codesign_tensor::ops::conv2d(&input, &filters, &spec).unwrap();
        let negated = codesign_tensor::ops::conv2d(&input, &neg, &spec).unwrap();
        for (a, b) in pos.as_slice().iter().zip(negated.as_slice()) {
            prop_assert_eq!(*a, -*b);
        }
    }

    /// Output shape always matches the IR's shape inference.
    #[test]
    fn conv_shape_matches_ir((input, filters, spec) in conv_case()) {
        let out = codesign_tensor::ops::conv2d(&input, &filters, &spec).unwrap();
        let expected = codesign_dnn::layer::infer_output(
            &codesign_dnn::LayerOp::Conv(spec),
            input.shape(),
        ).unwrap();
        prop_assert_eq!(out.shape(), expected);
    }

    /// A 1x1 convolution with identity channel matrix is the identity.
    #[test]
    fn pointwise_identity(c in 1usize..=8, h in 1usize..=8, w in 1usize..=8, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::random(Shape::new(c, h, w), 1000, &mut rng);
        let eye = Filters::from_fn(c, c, 1, 1, |k, cc, _, _| i32::from(k == cc));
        let spec = ConvSpec {
            out_channels: c,
            kernel: Kernel::square(1),
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        };
        let out = codesign_tensor::ops::conv2d(&input, &eye, &spec).unwrap();
        prop_assert_eq!(out, input);
    }

    /// Max pooling dominates average pooling pointwise for same window.
    #[test]
    fn max_pool_dominates_avg(c in 1usize..=4, n in 2usize..=9, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::random(Shape::new(c, n, n), 100, &mut rng);
        let k = 2usize;
        let max = codesign_tensor::ops::max_pool(&input, k, k).unwrap();
        let avg = codesign_tensor::ops::avg_pool(&input, k, k).unwrap();
        // Compare on the overlapping (floor-mode) extent.
        let s = avg.shape();
        for cc in 0..s.channels {
            for y in 0..s.height {
                for x in 0..s.width {
                    prop_assert!(max.at(cc, y, x) >= avg.at(cc, y, x));
                }
            }
        }
    }
}
