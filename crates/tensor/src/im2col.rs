//! im2col + GEMM convolution — an independent second implementation used
//! to cross-check the reference loop nest (and by property tests).

use codesign_dnn::{ConvSpec, Shape};

use crate::ops::{clamp_acc, ShapeMismatchError};
use crate::tensor::{Filters, Tensor};

/// Lowers the (per-group) input patches of a convolution into a
/// column-major matrix: one row per `(channel, dy, dx)` tap, one column
/// per output pixel.
///
/// Returned matrix is `rows × cols` in row-major order with
/// `rows = cg * kh * kw`, `cols = oh * ow`.
pub fn im2col(input: &Tensor, spec: &ConvSpec, group: usize, out_shape: Shape) -> Vec<i32> {
    let cg = input.shape().channels / spec.groups;
    let (kh, kw) = (spec.kernel.height, spec.kernel.width);
    let cols = out_shape.plane();
    let mut m = vec![0i32; cg * kh * kw * cols];
    let mut row = 0;
    for c in 0..cg {
        let ic = group * cg + c;
        for dy in 0..kh {
            for dx in 0..kw {
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let iy = (oy * spec.stride + dy) as isize - spec.pad_h as isize;
                        let ix = (ox * spec.stride + dx) as isize - spec.pad_w as isize;
                        m[row * cols + oy * out_shape.width + ox] = input.at_padded(ic, iy, ix);
                    }
                }
                row += 1;
            }
        }
    }
    m
}

/// Grouped convolution implemented as im2col followed by a weight × patch
/// matrix product. Produces exactly the same result as
/// [`crate::ops::conv2d`].
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`crate::ops::conv2d`].
pub fn conv2d_im2col(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = crate::ops::check_conv_args(input, filters, spec, "conv2d_im2col")?;
    let in_shape = input.shape();
    let cg = in_shape.channels / spec.groups;
    let kg = spec.out_channels / spec.groups;

    let (kh, kw) = (spec.kernel.height, spec.kernel.width);
    let rows = cg * kh * kw;
    let cols = out_shape.plane();
    let mut out = Tensor::zeros(out_shape);
    for group in 0..spec.groups {
        let patches = im2col(input, spec, group, out_shape);
        for kk in 0..kg {
            let k = group * kg + kk;
            // Flatten the filter in the same (c, dy, dx) row order.
            let mut wrow = Vec::with_capacity(rows);
            for c in 0..cg {
                for dy in 0..kh {
                    for dx in 0..kw {
                        wrow.push(filters.tap(k, c, dy, dx));
                    }
                }
            }
            for col in 0..cols {
                let mut acc: i64 = 0;
                for (r, &w) in wrow.iter().enumerate() {
                    acc += w as i64 * patches[r * cols + col] as i64;
                }
                let oy = col / out_shape.width;
                let ox = col % out_shape.width;
                *out.at_mut(k, oy, ox) = clamp_acc(acc);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv2d;
    use codesign_dnn::Kernel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(rng: &mut StdRng) -> (Tensor, Filters, ConvSpec) {
        let groups = [1usize, 1, 2][rng.gen_range(0..3usize)];
        let cg = rng.gen_range(1..=4usize);
        let cin = cg * groups;
        let kg = rng.gen_range(1..=4usize);
        let cout = kg * groups;
        let k: usize = [1, 3, 5][rng.gen_range(0..3usize)];
        let stride = rng.gen_range(1..=2usize);
        let pad = rng.gen_range(0..=k / 2);
        let h = rng.gen_range(k..k + 6);
        let w = rng.gen_range(k..k + 6);
        let input = Tensor::random(Shape::new(cin, h, w), 64, rng);
        let filters = Filters::random(cout, cg, k, k, 16, 0.3, rng);
        let spec = ConvSpec {
            out_channels: cout,
            kernel: Kernel::square(k),
            stride,
            pad_h: pad,
            pad_w: pad,
            groups,
        };
        (input, filters, spec)
    }

    #[test]
    fn matches_reference_on_random_cases() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let (input, filters, spec) = random_case(&mut rng);
            let a = conv2d(&input, &filters, &spec).unwrap();
            let b = conv2d_im2col(&input, &filters, &spec).unwrap();
            assert_eq!(a, b, "mismatch for spec {spec:?}");
        }
    }

    #[test]
    fn im2col_patch_layout() {
        // 1 channel 3x3 input, 2x2 kernel, stride 1, no pad -> 2x2 output.
        let input = Tensor::from_fn(Shape::new(1, 3, 3), |_, y, x| (y * 3 + x) as i32);
        let spec = ConvSpec {
            out_channels: 1,
            kernel: Kernel::square(2),
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        };
        let m = im2col(&input, &spec, 0, Shape::new(1, 2, 2));
        // Rows: taps (0,0),(0,1),(1,0),(1,1); cols: outputs (0,0),(0,1),(1,0),(1,1).
        assert_eq!(m, vec![0, 1, 3, 4, 1, 2, 4, 5, 3, 4, 6, 7, 4, 5, 7, 8]);
    }
}
