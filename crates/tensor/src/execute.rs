//! Functional execution of a whole [`Network`] over real tensor data.
//!
//! This is the end-to-end ground truth: given a weight store, it runs
//! every layer and returns all intermediate feature maps. The dataflow
//! executors in `codesign-sim` are verified layer-by-layer against these
//! results.
//!
//! Compute layers run on the GEMM fast path ([`crate::gemm`]) by
//! default; [`run_network_reference`] walks the same network with the
//! naive loop-nest operators in [`crate::ops`] — the executable
//! specification the fast path is proven bit-identical to (and the
//! baseline the functional benchmark measures speedup against).
//! Activations are held in an [`ActivationBuilder`] and every layer
//! input is resolved **by reference** out of it; no feature map is ever
//! cloned between layers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use codesign_dnn::{Layer, LayerOp, Network, PoolKind};
use rand::Rng;

use crate::ops::{
    avg_pool, conv2d, eltwise_add, fully_connected, global_avg_pool, max_pool, ShapeMismatchError,
};
use crate::tensor::{Filters, Tensor};

/// Weights for every compute layer of a network, keyed by layer name.
#[derive(Debug, Clone, Default)]
pub struct WeightStore {
    weights: HashMap<String, Filters>,
}

impl WeightStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates random weights for every compute layer of `network`,
    /// with the given filter-tap magnitude bound and zero-weight fraction
    /// (the paper models weight sparsity at 40 %, i.e. `0.4`).
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `0.0..=1.0`.
    pub fn random(network: &Network, range: i32, sparsity: f64, rng: &mut impl Rng) -> Self {
        let mut weights = HashMap::new();
        for layer in network.compute_layers() {
            let f = match &layer.op {
                LayerOp::Conv(spec) => Filters::random(
                    spec.out_channels,
                    layer.input.channels / spec.groups,
                    spec.kernel.height,
                    spec.kernel.width,
                    range,
                    sparsity,
                    rng,
                ),
                LayerOp::FullyConnected { out_features } => Filters::random(
                    *out_features,
                    layer.input.elements(),
                    1,
                    1,
                    range,
                    sparsity,
                    rng,
                ),
                _ => continue,
            };
            weights.insert(layer.name.clone(), f);
        }
        Self { weights }
    }

    /// Inserts (or replaces) weights for a layer.
    pub fn insert(&mut self, layer_name: impl Into<String>, filters: Filters) {
        self.weights.insert(layer_name.into(), filters);
    }

    /// Weights for a layer, if present.
    pub fn get(&self, layer_name: &str) -> Option<&Filters> {
        self.weights.get(layer_name)
    }

    /// Number of layers with weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Error produced by [`run_network`].
#[derive(Debug)]
pub enum RunNetworkError {
    /// A compute layer has no weights in the store.
    MissingWeights(String),
    /// A merge layer's second operand could not be resolved.
    MissingMergeInput(String),
    /// An operator rejected its arguments.
    Op(ShapeMismatchError),
}

impl fmt::Display for RunNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunNetworkError::MissingWeights(l) => write!(f, "no weights for layer `{l}`"),
            RunNetworkError::MissingMergeInput(l) => {
                write!(f, "merge input for layer `{l}` not found")
            }
            RunNetworkError::Op(e) => write!(f, "operator error: {e}"),
        }
    }
}

impl Error for RunNetworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunNetworkError::Op(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeMismatchError> for RunNetworkError {
    fn from(e: ShapeMismatchError) -> Self {
        RunNetworkError::Op(e)
    }
}

/// All per-layer outputs of a network run.
#[derive(Debug, Clone)]
pub struct NetworkActivations {
    outputs: Vec<(String, Tensor)>,
}

impl NetworkActivations {
    /// Assembles activations from `(layer name, output)` pairs in
    /// execution order — for alternative executors (e.g. the dataflow
    /// executors in `codesign-sim`) that produce the same artifact.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn from_outputs(outputs: Vec<(String, Tensor)>) -> Self {
        assert!(!outputs.is_empty(), "networks have at least one layer");
        Self { outputs }
    }

    /// Output of the named layer.
    pub fn get(&self, layer_name: &str) -> Option<&Tensor> {
        self.outputs.iter().find(|(n, _)| n == layer_name).map(|(_, t)| t)
    }

    /// The final network output.
    pub fn final_output(&self) -> &Tensor {
        // Non-empty by the `from_outputs` constructor invariant.
        &self.outputs.last().unwrap_or_else(|| unreachable!("networks have at least one layer")).1
    }

    /// Iterates `(layer name, output)` in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.outputs.iter().map(|(n, t)| (n.as_str(), t))
    }
}

/// Incrementally builds [`NetworkActivations`] during a network run.
///
/// Both [`run_network`] and the accelerator-schedule executor in
/// `codesign-sim` drive their layer loops through this builder: each
/// layer's operands are resolved **by reference** out of the map (no
/// activation tensor is cloned between layers), the layer's output is
/// pushed, and [`ActivationBuilder::finish`] yields the final artifact.
#[derive(Debug, Default)]
pub struct ActivationBuilder {
    outputs: Vec<(String, Tensor)>,
}

impl ActivationBuilder {
    /// Creates an empty builder sized for `layers` outputs.
    pub fn with_capacity(layers: usize) -> Self {
        Self { outputs: Vec::with_capacity(layers) }
    }

    /// Output of the named layer, if already produced.
    pub fn get(&self, layer_name: &str) -> Option<&Tensor> {
        self.outputs.iter().find(|(n, _)| n == layer_name).map(|(_, t)| t)
    }

    /// Resolves `layer`'s primary input: the output of the layer named by
    /// its `primary_input`, or the network input `image` when `None`.
    ///
    /// # Errors
    ///
    /// Returns [`RunNetworkError::MissingMergeInput`] when the named
    /// producer has not been executed.
    pub fn primary_input<'a>(
        &'a self,
        layer: &Layer,
        image: &'a Tensor,
    ) -> Result<&'a Tensor, RunNetworkError> {
        match &layer.primary_input {
            Some(name) => {
                self.get(name).ok_or_else(|| RunNetworkError::MissingMergeInput(layer.name.clone()))
            }
            None => Ok(image),
        }
    }

    /// Resolves `layer`'s merge operand: the recorded `extra_input`, the
    /// network input for an [`LayerOp::EltwiseAdd`] with no recorded
    /// source, or `None` for non-merge layers.
    ///
    /// # Errors
    ///
    /// Returns [`RunNetworkError::MissingMergeInput`] when the recorded
    /// branch has not been executed.
    pub fn merge_operand<'a>(
        &'a self,
        layer: &Layer,
        image: &'a Tensor,
    ) -> Result<Option<&'a Tensor>, RunNetworkError> {
        match &layer.extra_input {
            Some(name) => self
                .get(name)
                .map(Some)
                .ok_or_else(|| RunNetworkError::MissingMergeInput(layer.name.clone())),
            None => match layer.op {
                // EltwiseAdd with no recorded source adds the network input.
                LayerOp::EltwiseAdd => Ok(Some(image)),
                _ => Ok(None),
            },
        }
    }

    /// Records a layer's output.
    pub fn push(&mut self, layer_name: impl Into<String>, output: Tensor) {
        self.outputs.push((layer_name.into(), output));
    }

    /// Finishes the run.
    ///
    /// # Panics
    ///
    /// Panics if no layer output was pushed.
    pub fn finish(self) -> NetworkActivations {
        NetworkActivations::from_outputs(self.outputs)
    }
}

/// Looks up a compute layer's weights.
fn layer_weights<'a>(
    layer: &Layer,
    weights: &'a WeightStore,
) -> Result<&'a Filters, RunNetworkError> {
    weights.get(&layer.name).ok_or_else(|| RunNetworkError::MissingWeights(layer.name.clone()))
}

/// Runs every non-convolution/non-FC layer with the reference operators
/// (pools, merges and activations have a single implementation — there
/// is no fast/spec split for them).
fn run_aux_layer(
    layer: &Layer,
    input: &Tensor,
    merge_operand: Option<&Tensor>,
) -> Result<Tensor, RunNetworkError> {
    match &layer.op {
        LayerOp::Pool { kind, kernel, stride, .. } => match kind {
            PoolKind::Max => Ok(max_pool(input, *kernel, *stride)?),
            PoolKind::Average => Ok(avg_pool(input, *kernel, *stride)?),
        },
        LayerOp::GlobalAvgPool => Ok(global_avg_pool(input)),
        LayerOp::EltwiseAdd => {
            let other = merge_operand
                .ok_or_else(|| RunNetworkError::MissingMergeInput(layer.name.clone()))?;
            Ok(eltwise_add(input, other)?)
        }
        LayerOp::Concat { .. } => {
            let other = merge_operand
                .ok_or_else(|| RunNetworkError::MissingMergeInput(layer.name.clone()))?;
            // Primary branch first, then the recorded extra branch — the
            // same convention `LayerOp::Concat::extra_channels` uses.
            Ok(Tensor::concat_channels(&[input, other]))
        }
        LayerOp::Conv(_) | LayerOp::FullyConnected { .. } => {
            unreachable!("compute layers are dispatched by the caller")
        }
    }
}

/// Runs one layer given its resolved input (and merge operand where
/// relevant), computing convolutions and FC layers on the GEMM fast path
/// with `jobs` workers (`0` = one per core). Results are bit-identical
/// to [`run_layer_reference`] for every `jobs` value.
///
/// # Errors
///
/// Returns [`RunNetworkError`] when weights are missing or an operator
/// rejects its arguments.
pub fn run_layer_with(
    layer: &Layer,
    input: &Tensor,
    merge_operand: Option<&Tensor>,
    weights: &WeightStore,
    jobs: usize,
) -> Result<Tensor, RunNetworkError> {
    match &layer.op {
        LayerOp::Conv(spec) => {
            Ok(crate::gemm::conv2d_gemm_jobs(input, layer_weights(layer, weights)?, spec, jobs)?)
        }
        LayerOp::FullyConnected { .. } => {
            Ok(crate::gemm::fully_connected_gemm_jobs(input, layer_weights(layer, weights)?, jobs)?)
        }
        _ => run_aux_layer(layer, input, merge_operand),
    }
}

/// Runs one layer on the GEMM fast path with a single worker —
/// [`run_layer_with`] with `jobs = 1`.
///
/// # Errors
///
/// Returns [`RunNetworkError`] when weights are missing or an operator
/// rejects its arguments.
pub fn run_layer(
    layer: &Layer,
    input: &Tensor,
    merge_operand: Option<&Tensor>,
    weights: &WeightStore,
) -> Result<Tensor, RunNetworkError> {
    run_layer_with(layer, input, merge_operand, weights, 1)
}

/// Runs one layer with the naive reference operators ([`crate::ops`]) —
/// the executable specification of [`run_layer`], and the baseline the
/// functional benchmark measures the GEMM path against.
///
/// # Errors
///
/// Returns [`RunNetworkError`] when weights are missing or an operator
/// rejects its arguments.
pub fn run_layer_reference(
    layer: &Layer,
    input: &Tensor,
    merge_operand: Option<&Tensor>,
    weights: &WeightStore,
) -> Result<Tensor, RunNetworkError> {
    match &layer.op {
        LayerOp::Conv(spec) => Ok(conv2d(input, layer_weights(layer, weights)?, spec)?),
        LayerOp::FullyConnected { .. } => {
            Ok(fully_connected(input, layer_weights(layer, weights)?)?)
        }
        _ => run_aux_layer(layer, input, merge_operand),
    }
}

/// Shared network walk: resolves each layer's operands by reference out
/// of the builder and delegates the layer computation to `run`.
fn run_network_inner(
    network: &Network,
    image: &Tensor,
    run: impl Fn(&Layer, &Tensor, Option<&Tensor>) -> Result<Tensor, RunNetworkError>,
) -> Result<NetworkActivations, RunNetworkError> {
    let mut acts = ActivationBuilder::with_capacity(network.layers().len());
    for layer in network.layers() {
        let input = acts.primary_input(layer, image)?;
        let merge = acts.merge_operand(layer, image)?;
        let out = run(layer, input, merge)?;
        acts.push(layer.name.clone(), out);
    }
    Ok(acts.finish())
}

/// Runs the whole network on `image` with the GEMM fast path, returning
/// every layer's output. `jobs` workers (`0` = one per core) parallelise
/// each layer over output channels; results are byte-identical for every
/// `jobs` value.
///
/// The linearized-DAG convention of [`codesign_dnn::NetworkBuilder`] is
/// honored: each layer reads the output of the layer named by its
/// `primary_input` (or the network input when `None`), and merge layers
/// additionally read their `extra_input`.
///
/// # Errors
///
/// Returns [`RunNetworkError`] when weights are missing, a merge operand
/// cannot be resolved, or an operator rejects its arguments.
pub fn run_network_with(
    network: &Network,
    image: &Tensor,
    weights: &WeightStore,
    jobs: usize,
) -> Result<NetworkActivations, RunNetworkError> {
    run_network_inner(network, image, |layer, input, merge| {
        run_layer_with(layer, input, merge, weights, jobs)
    })
}

/// Runs the whole network on `image` — [`run_network_with`] with a
/// single worker.
///
/// # Errors
///
/// Returns [`RunNetworkError`] when weights are missing, a merge operand
/// cannot be resolved, or an operator rejects its arguments.
pub fn run_network(
    network: &Network,
    image: &Tensor,
    weights: &WeightStore,
) -> Result<NetworkActivations, RunNetworkError> {
    run_network_with(network, image, weights, 1)
}

/// Runs the whole network with the naive reference operators — the
/// executable specification [`run_network`] is proven bit-identical to
/// (and the functional benchmark's baseline).
///
/// # Errors
///
/// Returns [`RunNetworkError`] under the same conditions as
/// [`run_network`].
pub fn run_network_reference(
    network: &Network,
    image: &Tensor,
    weights: &WeightStore,
) -> Result<NetworkActivations, RunNetworkError> {
    run_network_inner(network, image, |layer, input, merge| {
        run_layer_reference(layer, input, merge, weights)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{NetworkBuilder, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn runs_a_fire_network_end_to_end() {
        let net = NetworkBuilder::new("mini-squeeze", Shape::new(3, 16, 16))
            .conv("conv1", 8, 3, 2, 0)
            .fire("fire2", 4, 8, 8)
            .global_avg_pool("gap")
            .fully_connected("fc", 10)
            .finish()
            .unwrap();
        let mut r = rng();
        let weights = WeightStore::random(&net, 8, 0.4, &mut r);
        let image = Tensor::random(net.input(), 16, &mut r);
        let acts = run_network(&net, &image, &weights).unwrap();
        assert_eq!(acts.final_output().shape(), Shape::vector(10));
        // Concat stacked both expands.
        assert_eq!(acts.get("fire2/concat").unwrap().shape().channels, 16);
    }

    #[test]
    fn concat_order_is_primary_then_extra() {
        let net =
            NetworkBuilder::new("t", Shape::new(2, 4, 4)).fire("f", 2, 3, 5).finish().unwrap();
        let mut r = rng();
        let weights = WeightStore::random(&net, 4, 0.0, &mut r);
        let image = Tensor::random(net.input(), 8, &mut r);
        let acts = run_network(&net, &image, &weights).unwrap();
        let cat = acts.get("f/concat").unwrap();
        let e3 = acts.get("f/expand3x3").unwrap();
        let e1 = acts.get("f/expand1x1").unwrap();
        assert_eq!(cat.shape().channels, 8);
        // Primary input of concat is expand3x3 (the running branch).
        assert_eq!(cat.at(0, 1, 1), e3.at(0, 1, 1));
        assert_eq!(cat.at(5, 1, 1), e1.at(0, 1, 1));
    }

    #[test]
    fn residual_add_uses_recorded_branch() {
        let mut b = NetworkBuilder::new("res", Shape::new(4, 8, 8));
        b.conv("body", 4, 3, 1, 1);
        b.eltwise_add("add", None); // other operand: the network input
        let net = b.finish().unwrap();
        let mut r = rng();
        let weights = WeightStore::random(&net, 4, 0.0, &mut r);
        let image = Tensor::random(net.input(), 8, &mut r);
        let acts = run_network(&net, &image, &weights).unwrap();
        let body = acts.get("body").unwrap();
        let add = acts.get("add").unwrap();
        assert_eq!(add.at(2, 3, 3), body.at(2, 3, 3) + image.at(2, 3, 3));
    }

    #[test]
    fn missing_weights_is_an_error() {
        let net =
            NetworkBuilder::new("t", Shape::new(1, 4, 4)).conv("c", 1, 1, 1, 0).finish().unwrap();
        let image = Tensor::zeros(net.input());
        let err = run_network(&net, &image, &WeightStore::new()).unwrap_err();
        assert!(matches!(err, RunNetworkError::MissingWeights(_)));
        assert!(err.to_string().contains("`c`"));
    }

    #[test]
    fn weight_store_covers_compute_layers_only() {
        let net = NetworkBuilder::new("t", Shape::new(3, 8, 8))
            .conv("c", 4, 3, 1, 1)
            .max_pool("p", 2, 2)
            .global_avg_pool("g")
            .fully_connected("fc", 5)
            .finish()
            .unwrap();
        let ws = WeightStore::random(&net, 4, 0.0, &mut rng());
        assert_eq!(ws.len(), 2);
        assert!(ws.get("c").is_some());
        assert!(ws.get("p").is_none());
        assert!(!ws.is_empty());
    }
}
