//! Symmetric integer quantization.
//!
//! The Squeezelerator's PE carries "a 16-bit integer multiplier" — real
//! deployments quantize trained floating-point weights and activations
//! into that range. This module provides the symmetric (zero-point-free)
//! scheme such datapaths use, plus the error metrics needed to check a
//! chosen bit width.

use std::fmt;

use codesign_dnn::Shape;

use crate::tensor::Tensor;

/// A symmetric quantization scale: `real = quantized * scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScale {
    scale: f32,
    bits: u32,
}

impl QuantScale {
    /// Calibrates a scale so that `max_abs` maps to the largest code of a
    /// signed `bits`-bit integer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=31` or `max_abs` is not finite and
    /// positive.
    pub fn calibrate(max_abs: f32, bits: u32) -> Self {
        assert!((2..=31).contains(&bits), "bit width must be in 2..=31");
        assert!(max_abs.is_finite() && max_abs > 0.0, "max_abs must be positive");
        let qmax = ((1i64 << (bits - 1)) - 1) as f32;
        Self { scale: max_abs / qmax, bits }
    }

    /// Calibrates from data: uses the maximum absolute value seen.
    /// Returns `None` for empty or all-zero data.
    pub fn calibrate_from(values: &[f32], bits: u32) -> Option<Self> {
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        (max_abs > 0.0 && max_abs.is_finite()).then(|| Self::calibrate(max_abs, bits))
    }

    /// The real value one integer step represents.
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// The bit width this scale was calibrated for.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable code.
    pub fn qmax(&self) -> i32 {
        ((1i64 << (self.bits - 1)) - 1) as i32
    }

    /// Quantizes one value (round-to-nearest, saturating).
    pub fn quantize(&self, value: f32) -> i32 {
        let q = (value / self.scale).round();
        q.clamp(-(self.qmax() as f32), self.qmax() as f32) as i32
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.scale
    }

    /// Quantizes a whole buffer into a [`Tensor`] of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != shape.elements()`.
    pub fn quantize_tensor(&self, values: &[f32], shape: Shape) -> Tensor {
        assert_eq!(values.len(), shape.elements(), "buffer length must match shape");
        Tensor::from_vec(shape, values.iter().map(|&v| self.quantize(v)).collect())
    }
}

impl fmt::Display for QuantScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}: step {:.3e}", self.bits, self.scale)
    }
}

/// Signal-to-quantization-noise ratio in dB of quantizing `values` with
/// `scale`. Higher is better; 16-bit symmetric quantization of
/// well-scaled data lands near 90 dB.
pub fn sqnr_db(values: &[f32], scale: &QuantScale) -> f64 {
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for &v in values {
        let r = scale.dequantize(scale.quantize(v));
        signal += f64::from(v) * f64::from(v);
        let e = f64::from(v - r);
        noise += e * e;
    }
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_close() {
        let s = QuantScale::calibrate(1.0, 16);
        for v in [-1.0f32, -0.5, 0.0, 0.123, 0.999] {
            let r = s.dequantize(s.quantize(v));
            assert!((r - v).abs() <= s.step(), "{v} -> {r}");
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let s = QuantScale::calibrate(1.0, 8);
        assert_eq!(s.quantize(10.0), 127);
        assert_eq!(s.quantize(-10.0), -127);
    }

    #[test]
    fn sixteen_bits_beat_eight() {
        let values: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin()).collect();
        let s8 = QuantScale::calibrate_from(&values, 8).unwrap();
        let s16 = QuantScale::calibrate_from(&values, 16).unwrap();
        let (snr8, snr16) = (sqnr_db(&values, &s8), sqnr_db(&values, &s16));
        assert!(snr16 > snr8 + 40.0, "8-bit {snr8:.1} dB vs 16-bit {snr16:.1} dB");
        assert!(snr16 > 80.0);
    }

    #[test]
    fn calibrate_from_rejects_degenerate_data() {
        assert!(QuantScale::calibrate_from(&[], 8).is_none());
        assert!(QuantScale::calibrate_from(&[0.0, 0.0], 8).is_none());
    }

    #[test]
    fn quantize_tensor_shape_checked() {
        let s = QuantScale::calibrate(2.0, 16);
        let t = s.quantize_tensor(&[0.5, 1.0, -1.0, 2.0], Shape::new(1, 2, 2));
        assert_eq!(t.shape(), Shape::new(1, 2, 2));
        assert_eq!(t.at(0, 1, 1), s.qmax());
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn bad_bit_width_rejected() {
        let _ = QuantScale::calibrate(1.0, 1);
    }

    #[test]
    fn display_mentions_bits() {
        let s = QuantScale::calibrate(1.0, 16);
        assert!(s.to_string().starts_with("q16"));
    }

    #[test]
    fn widest_scale_stays_inside_i32() {
        // 31-bit codes are the widest the i32 substrate can carry:
        // qmax must stay below i32::MAX and the clamp must hold for
        // inputs far past calibration, including infinities.
        let s = QuantScale::calibrate(1.0, 31);
        assert_eq!(s.qmax(), (1 << 30) - 1);
        assert!(s.qmax() < i32::MAX);
        // The clamp rail passes through f32, which cannot represent
        // 2^30 - 1 exactly and rounds it up to 2^30 — so saturated codes
        // may exceed qmax by one ulp of the rail, but always stay well
        // inside i32.
        let rail = s.qmax() as f32 as i64;
        for v in [f32::MAX, f32::INFINITY] {
            let q = s.quantize(v) as i64;
            assert!((s.qmax() as i64..=rail).contains(&q), "{v} -> {q}");
            assert_eq!(s.quantize(-v) as i64, -q);
        }
        // At 30 bits and below the rail is exact and saturation lands
        // on qmax itself.
        let s = QuantScale::calibrate(1.0, 24);
        assert_eq!(s.quantize(f32::MAX), s.qmax());
        assert_eq!(s.quantize(f32::NEG_INFINITY), -s.qmax());
    }

    #[test]
    fn dequantize_handles_extreme_codes() {
        // Codes at the i32 rails dequantize to finite values — scale is
        // finite and |code| <= |i32::MIN| < 2^31, well inside f32 range.
        let s = QuantScale::calibrate(1.0, 8);
        assert!(s.dequantize(i32::MAX).is_finite());
        assert!(s.dequantize(i32::MIN).is_finite());
        assert!(s.dequantize(i32::MIN) < 0.0 && s.dequantize(i32::MAX) > 0.0);
        // Round-tripping a saturated quantization stays at the rail.
        assert_eq!(s.quantize(s.dequantize(s.qmax()) * 100.0), s.qmax());
    }
}
