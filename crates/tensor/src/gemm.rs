//! im2col → tiled, register-blocked integer GEMM — the fast functional
//! execution path.
//!
//! The naive loop nest in [`crate::ops::conv2d`] and the row-major
//! im2col product in [`crate::im2col::conv2d_im2col`] are the executable
//! specifications; this module computes exactly the same per-output
//! `i64` accumulator sums (merely reordered — integer addition commutes,
//! so the single final [`clamp_acc`] makes the results **bit-identical**)
//! but organised for throughput:
//!
//! * **packed patches** ([`pack_patches`]): the patch matrix is laid out
//!   in **lane-interleaved column blocks** — [`NC`] output pixels share a
//!   block, and tap `r` of all [`NC`] pixels is one contiguous `i32`
//!   slice. A micro-kernel step therefore touches a single cache line
//!   per tap (a pixel-major layout touches [`NC`] lines), the lane loop
//!   is a fixed-width SIMD multiply-add, and padding is resolved once
//!   during packing, never in the reduction loop;
//! * **zero-skipping micro-kernel** ([`gemm_accumulate`]): each filter's
//!   nonzero taps are gathered once into an index/weight list and swept
//!   over register-blocked column groups, so sparse filters — the
//!   common case for the quantized networks this repo models, and the
//!   very effect the paper's accelerator exploits — cost only their
//!   density, while dense filters degrade gracefully to a sequential
//!   register-blocked walk. Filters are swept in chunks of [`MR`] with
//!   the column-block loop outside the filter loop, so one resident
//!   block is reused [`MR`] times instead of the whole patch matrix
//!   streaming from L2 once per filter — the blocking that turns the
//!   kernel from memory-bound into multiply-bound;
//! * **a dedicated depthwise path** that skips the im2col blowup
//!   entirely — depthwise patches would duplicate each input pixel
//!   `kh × kw` times for a reduction of depth `kh × kw`, so the direct
//!   row-sliding loop is both smaller and faster;
//! * **output-channel parallelism** over the process-wide worker pool
//!   (`codesign-parallel`): tasks compute disjoint output-channel blocks
//!   that are reassembled in deterministic order, so results are
//!   byte-identical for every `jobs` value.

use codesign_dnn::{ConvSpec, Shape};

use crate::ops::{check_conv_args, clamp_acc, ShapeMismatchError};
use crate::tensor::{Filters, Tensor};

/// Lane count of one interleaved column block: output pixels handled per
/// micro-kernel step (one `i64` accumulator each, held in registers
/// across the reduction).
pub const NC: usize = 16;
/// Filters swept per pass over a resident column block — the outer-level
/// reuse factor that keeps the kernel multiply-bound instead of
/// streaming the patch matrix from L2 once per filter.
const MR: usize = 16;
/// Output-channel chunk handed to one worker-pool task.
const PAR_FILTER_CHUNK: usize = 16;
/// Layers below this many multiply-accumulates run serially — pool
/// latency would dominate the work.
const MIN_PAR_MACS: u64 = 1 << 22;

/// Whether `spec` over `in_shape` is a depthwise convolution (one input
/// channel and one filter per group) — the case that takes the direct
/// path instead of im2col.
pub fn is_depthwise(spec: &ConvSpec, in_shape: Shape) -> bool {
    spec.groups > 1 && spec.groups == in_shape.channels && spec.groups == spec.out_channels
}

/// The half-open range `lo..hi` of output indices whose sampled input
/// position `(offset + i) * stride + tap - pad` lands inside
/// `0..extent_in`. Outputs outside the range read the zero padding and
/// contribute nothing, so loops over `lo..hi` can index the input
/// directly with no per-element bounds branch.
pub fn valid_range(
    extent_out: usize,
    offset: usize,
    stride: usize,
    tap: usize,
    pad: usize,
    extent_in: usize,
) -> (usize, usize) {
    if stride == 0 || extent_in == 0 {
        return (0, 0);
    }
    let base = offset * stride + tap;
    let lo = if base >= pad { 0 } else { (pad - base).div_ceil(stride) };
    let hi = if extent_in + pad > base {
        ((extent_in + pad - base - 1) / stride + 1).min(extent_out)
    } else {
        0
    };
    (lo.min(hi), hi)
}

/// Lowers one group's input patches into the **lane-interleaved block**
/// matrix the micro-kernel consumes: output pixels are grouped into
/// blocks of [`NC`], and within block `b` the element for tap `r` of
/// pixel `b * NC + j` sits at `b * rows * NC + r * NC + j` (with
/// `rows = cg * kh * kw` in `(c, dy, dx)` tap order, `cols = oh * ow`
/// pixels in raster order). The final partial block's unused lanes stay
/// zero; the buffer length is `cols.div_ceil(NC) * rows * NC`.
///
/// This is [`crate::im2col::im2col`] transposed and tiled: one tap of
/// [`NC`] neighbouring pixels is a single contiguous slice, so the
/// reduction loop reads one cache line per tap and the lane loop is a
/// fixed-width SIMD multiply-add.
pub fn pack_patches(input: &Tensor, spec: &ConvSpec, group: usize, out_shape: Shape) -> Vec<i32> {
    let s = input.shape();
    let cg = s.channels / spec.groups.max(1);
    let (kh, kw) = (spec.kernel.height, spec.kernel.width);
    let (oh, ow) = (out_shape.height, out_shape.width);
    let rows = cg * kh * kw;
    let cols = oh * ow;
    let mut m = vec![0i32; cols.div_ceil(NC) * rows * NC];
    if s.height == 0 || s.width == 0 {
        return m;
    }
    // Output pixels outermost: each (c, dy) contributes a short kw-tap
    // run read from one L1-resident input row, and writes land in one
    // L1-resident block (stride NC within it). Per-element padding
    // branches run here once so the reduction loop never branches.
    let base = group * cg;
    for oy in 0..oh {
        for ox in 0..ow {
            let col = oy * ow + ox;
            let blk = &mut m[(col / NC) * rows * NC..];
            let lane = col % NC;
            for c in 0..cg {
                let src = input.channel_plane(base + c);
                for dy in 0..kh {
                    let iy = oy * spec.stride + dy;
                    if iy < spec.pad_h || iy - spec.pad_h >= s.height {
                        continue;
                    }
                    let src_row = &src[(iy - spec.pad_h) * s.width..][..s.width];
                    let r0 = (c * kh + dy) * kw;
                    for dx in 0..kw {
                        let ix = ox * spec.stride + dx;
                        if ix >= spec.pad_w && ix - spec.pad_w < s.width {
                            blk[(r0 + dx) * NC + lane] = src_row[ix - spec.pad_w];
                        }
                    }
                }
            }
        }
    }
    m
}

/// The zero-skipping micro-kernel:
/// `acc[f * cols + col] += dot(wrows[f], patch(col))` for every filter
/// row and pixel column, where `patches` is the lane-interleaved block
/// matrix from [`pack_patches`].
///
/// Filters are processed in chunks of [`MR`]: the chunk's nonzero taps
/// are gathered into one index/weight list, then the **column blocks are
/// the outer loop** — each resident block is swept by all [`MR`] tap
/// lists before moving on, so the patch matrix streams from cache once
/// per chunk instead of once per filter. Per tap the kernel reads [`NC`]
/// contiguous lanes and widens `i32 × i32 → i64` into [`NC`] register
/// accumulators — a fixed-width pattern LLVM turns into SIMD widening
/// multiplies.
///
/// Skipping a zero weight drops a term that is exactly `0`, and `i64`
/// addition (wrapping in release builds) is commutative, so the totals
/// are **bit-identical** to the dense reference loop nest regardless of
/// sparsity, blocking, or lane width. Dense filters degenerate to a
/// sequential tap list and remain multiply-bound; on the sparse filters
/// real quantized networks have, throughput scales with density — the
/// same zero-skip economics the paper's accelerator exploits in silicon.
pub fn gemm_accumulate(
    wrows: &[&[i32]],
    patches: &[i32],
    rows: usize,
    cols: usize,
    acc: &mut [i64],
) {
    debug_assert_eq!(acc.len(), wrows.len() * cols);
    if rows == 0 || cols == 0 {
        return;
    }
    let nblocks = cols.div_ceil(NC);
    debug_assert!(patches.len() >= nblocks * rows * NC);
    let mut nnz: Vec<(u32, i32)> = Vec::with_capacity(MR * rows);
    let mut offs = [0usize; MR + 1];
    for f0 in (0..wrows.len()).step_by(MR) {
        let fl = MR.min(wrows.len() - f0);
        nnz.clear();
        for i in 0..fl {
            offs[i] = nnz.len();
            let w = &wrows[f0 + i][..rows];
            nnz.extend(w.iter().enumerate().filter(|(_, &v)| v != 0).map(|(r, &v)| (r as u32, v)));
        }
        offs[fl] = nnz.len();
        for b in 0..nblocks {
            let blk = &patches[b * rows * NC..(b + 1) * rows * NC];
            let c0 = b * NC;
            let bw = NC.min(cols - c0);
            for i in 0..fl {
                let taps = &nnz[offs[i]..offs[i + 1]];
                let mut a = [0i64; NC];
                for &(r, wv) in taps {
                    let x = &blk[r as usize * NC..][..NC];
                    for j in 0..NC {
                        a[j] += wv as i64 * x[j] as i64;
                    }
                }
                for (d, &av) in acc[(f0 + i) * cols + c0..][..bw].iter_mut().zip(a.iter()) {
                    *d += av;
                }
            }
        }
    }
}

/// Dense `i32` matrix-vector accumulate for the fully-connected path:
/// `acc[f] += dot(wrows[f], x)`. Four interleaved partial sums give the
/// widening multiply chain enough independence to saturate the machine;
/// `i64` addition commutes, so the regrouped total is bit-identical to
/// the sequential reference sum.
fn dense_matvec(wrows: &[&[i32]], x: &[i32], acc: &mut [i64]) {
    debug_assert_eq!(acc.len(), wrows.len());
    for (d, w) in acc.iter_mut().zip(wrows) {
        let w = &w[..x.len()];
        let mut a = [0i64; 4];
        let mut wc = w.chunks_exact(4);
        let mut xc = x.chunks_exact(4);
        for (ws, xs) in (&mut wc).zip(&mut xc) {
            for j in 0..4 {
                a[j] += ws[j] as i64 * xs[j] as i64;
            }
        }
        let mut tail = 0i64;
        for (&wv, &xv) in wc.remainder().iter().zip(xc.remainder()) {
            tail += wv as i64 * xv as i64;
        }
        *d += a[0] + a[1] + a[2] + a[3] + tail;
    }
}

/// Serial GEMM-backed grouped convolution — [`conv2d_gemm_jobs`] with one
/// worker. Bit-identical to [`crate::ops::conv2d`].
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`crate::ops::conv2d`].
pub fn conv2d_gemm(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
) -> Result<Tensor, ShapeMismatchError> {
    conv2d_gemm_jobs(input, filters, spec, 1)
}

/// GEMM-backed grouped convolution, parallelised over output-channel
/// blocks with `jobs` workers (`0` = one per core). Results are
/// byte-identical to [`crate::ops::conv2d`] for **every** `jobs` value:
/// each task produces a disjoint output-channel block and blocks are
/// reassembled in order.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`crate::ops::conv2d`].
pub fn conv2d_gemm_jobs(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    jobs: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_gemm")?;
    if is_depthwise(spec, input.shape()) {
        return Ok(depthwise_direct(input, filters, spec, out_shape, jobs));
    }
    let cg = input.shape().channels / spec.groups;
    let kg = spec.out_channels / spec.groups;
    let (kh, kw) = (spec.kernel.height, spec.kernel.width);
    let rows = cg * kh * kw;
    let cols = out_shape.plane();
    let jobs = effective_jobs(jobs, (spec.out_channels * rows * cols) as u64);

    let mut data = Vec::with_capacity(out_shape.elements());
    for group in 0..spec.groups {
        let patches = pack_patches(input, spec, group, out_shape);
        let chunks = kg.div_ceil(PAR_FILTER_CHUNK);
        let blocks = codesign_parallel::par_map_range(jobs, chunks, |chunk| {
            let k0 = chunk * PAR_FILTER_CHUNK;
            let klen = PAR_FILTER_CHUNK.min(kg - k0);
            let wrows: Vec<&[i32]> =
                (k0..k0 + klen).map(|kk| filters.filter_taps(group * kg + kk)).collect();
            let mut acc = vec![0i64; klen * cols];
            gemm_accumulate(&wrows, &patches, rows, cols, &mut acc);
            acc.into_iter().map(clamp_acc).collect::<Vec<i32>>()
        });
        for b in &blocks {
            data.extend_from_slice(b);
        }
    }
    Ok(Tensor::from_vec(out_shape, data))
}

/// Depthwise convolution without the im2col blowup: each channel slides
/// its own `kh × kw` window directly over its input plane, with padding
/// resolved per kernel row via [`valid_range`] and zero taps skipped
/// (a zero tap contributes an exact `0` to the sum, so skipping it never
/// changes the result). Parallel over channels.
fn depthwise_direct(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    out_shape: Shape,
    jobs: usize,
) -> Tensor {
    let s = input.shape();
    let (kh, kw) = (spec.kernel.height, spec.kernel.width);
    let (oh, ow) = (out_shape.height, out_shape.width);
    let plane = oh * ow;
    let jobs = effective_jobs(jobs, (s.channels * plane * kh * kw) as u64);

    let planes = codesign_parallel::par_map_range(jobs, s.channels, |c| {
        let mut acc = vec![0i64; plane];
        let src = input.channel_plane(c);
        for dy in 0..kh {
            let (ylo, yhi) = valid_range(oh, 0, spec.stride, dy, spec.pad_h, s.height);
            for dx in 0..kw {
                let w = filters.tap(c, 0, dy, dx) as i64;
                if w == 0 {
                    continue;
                }
                let (xlo, xhi) = valid_range(ow, 0, spec.stride, dx, spec.pad_w, s.width);
                for oy in ylo..yhi {
                    let iy = oy * spec.stride + dy - spec.pad_h;
                    let src_row = &src[iy * s.width..(iy + 1) * s.width];
                    let dst = &mut acc[oy * ow..(oy + 1) * ow];
                    let mut ix = xlo * spec.stride + dx - spec.pad_w;
                    for d in dst.iter_mut().take(xhi).skip(xlo) {
                        *d += w * src_row[ix] as i64;
                        ix += spec.stride;
                    }
                }
            }
        }
        acc.into_iter().map(clamp_acc).collect::<Vec<i32>>()
    });
    let mut data = Vec::with_capacity(out_shape.elements());
    for p in &planes {
        data.extend_from_slice(p);
    }
    Tensor::from_vec(out_shape, data)
}

/// Serial GEMM-backed fully-connected layer — [`fully_connected_gemm_jobs`]
/// with one worker. Bit-identical to [`crate::ops::fully_connected`].
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`crate::ops::fully_connected`].
pub fn fully_connected_gemm(
    input: &Tensor,
    weights: &Filters,
) -> Result<Tensor, ShapeMismatchError> {
    fully_connected_gemm_jobs(input, weights, 1)
}

/// Fully-connected layer as a dense matrix-vector product: the flattened
/// input vector stays cache-resident while each weight row streams past
/// it once ([`dense_matvec`]) — no patch packing, no tap lists. Parallel
/// over output-feature blocks; byte-identical to
/// [`crate::ops::fully_connected`] for every `jobs` value.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`crate::ops::fully_connected`].
pub fn fully_connected_gemm_jobs(
    input: &Tensor,
    weights: &Filters,
    jobs: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let flat = input.as_slice();
    if weights.in_channels() != flat.len()
        || weights.kernel_height() != 1
        || weights.kernel_width() != 1
    {
        return Err(ShapeMismatchError::new("fully_connected_gemm", "weight matrix mismatch"));
    }
    let rows = flat.len();
    let out_features = weights.out_channels();
    let jobs = effective_jobs(jobs, (out_features * rows) as u64);

    let chunks = out_features.div_ceil(PAR_FILTER_CHUNK);
    let blocks = codesign_parallel::par_map_range(jobs, chunks, |chunk| {
        let k0 = chunk * PAR_FILTER_CHUNK;
        let klen = PAR_FILTER_CHUNK.min(out_features - k0);
        let wrows: Vec<&[i32]> = (k0..k0 + klen).map(|k| weights.filter_taps(k)).collect();
        let mut acc = vec![0i64; klen];
        dense_matvec(&wrows, flat, &mut acc);
        acc.into_iter().map(clamp_acc).collect::<Vec<i32>>()
    });
    let mut data = Vec::with_capacity(out_features);
    for b in &blocks {
        data.extend_from_slice(b);
    }
    Ok(Tensor::from_vec(Shape::vector(out_features), data))
}

/// Collapses `jobs` to `1` for layers too small to amortise pool latency.
fn effective_jobs(jobs: usize, macs: u64) -> usize {
    if macs < MIN_PAR_MACS {
        1
    } else {
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::conv2d_im2col;
    use crate::ops::{conv2d, fully_connected};
    use codesign_dnn::Kernel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(rng: &mut StdRng) -> (Tensor, Filters, ConvSpec) {
        let depthwise = rng.gen_bool(0.25);
        let (groups, cg, cout) = if depthwise {
            let c = rng.gen_range(2..=9usize);
            (c, 1, c)
        } else {
            let groups = [1, 1, 1, 2][rng.gen_range(0..4usize)];
            let cg = rng.gen_range(1..=6usize);
            (groups, cg, groups * rng.gen_range(1..=11usize))
        };
        let (kh, kw): (usize, usize) =
            [(1, 1), (3, 3), (1, 3), (3, 1), (5, 5), (7, 7)][rng.gen_range(0..6usize)];
        let stride = rng.gen_range(1..=3usize);
        let h = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let w = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let input = Tensor::random(Shape::new(groups * cg, h, w), 64, rng);
        let filters = Filters::random(cout, cg, kh, kw, 16, 0.4, rng);
        let spec = ConvSpec {
            out_channels: cout,
            kernel: Kernel::new(kh, kw),
            stride,
            pad_h: rng.gen_range(0..=kh / 2),
            pad_w: rng.gen_range(0..=kw / 2),
            groups,
        };
        (input, filters, spec)
    }

    #[test]
    fn gemm_matches_reference_on_random_cases() {
        let mut rng = StdRng::seed_from_u64(12);
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            let got = conv2d_gemm(&input, &filters, &spec).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn gemm_matches_im2col_cross_check() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d_im2col(&input, &filters, &spec).unwrap();
            let got = conv2d_gemm(&input, &filters, &spec).unwrap();
            assert_eq!(got, want, "{spec:?}");
        }
    }

    #[test]
    fn parallel_gemm_is_jobs_invariant() {
        let mut rng = StdRng::seed_from_u64(14);
        let input = Tensor::random(Shape::new(8, 24, 24), 64, &mut rng);
        let filters = Filters::random(48, 8, 3, 3, 16, 0.4, &mut rng);
        let spec = ConvSpec {
            out_channels: 48,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        let serial = conv2d_gemm_jobs(&input, &filters, &spec, 1).unwrap();
        for jobs in [2, 3, 8] {
            assert_eq!(conv2d_gemm_jobs(&input, &filters, &spec, jobs).unwrap(), serial);
        }
    }

    #[test]
    fn pack_patches_is_lane_interleaved_im2col() {
        // 2 channels, 5x5 input, 3x3 kernel with padding: 25 output
        // pixels span two NC-wide column blocks, so both the interleaved
        // layout and the zero-padded tail lanes are exercised.
        let input = Tensor::from_fn(Shape::new(2, 5, 5), |c, y, x| (c * 25 + y * 5 + x) as i32 + 1);
        let spec = ConvSpec {
            out_channels: 1,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        let out_shape = Shape::new(1, 5, 5);
        let rowmajor = crate::im2col::im2col(&input, &spec, 0, out_shape);
        let packed = pack_patches(&input, &spec, 0, out_shape);
        let (rows, cols): (usize, usize) = (2 * 9, 25);
        assert_eq!(packed.len(), cols.div_ceil(NC) * rows * NC);
        for r in 0..rows {
            for c in 0..cols {
                // im2col element (r, c) lands in block c / NC, lane c % NC.
                assert_eq!(
                    packed[(c / NC) * rows * NC + r * NC + (c % NC)],
                    rowmajor[r * cols + c],
                    "row {r} col {c}"
                );
            }
            // Tail lanes past the last real column stay zero.
            for lane in cols % NC..NC {
                assert_eq!(packed[(cols / NC) * rows * NC + r * NC + lane], 0);
            }
        }
    }

    #[test]
    fn fc_gemm_matches_reference() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let n = rng.gen_range(1..50);
            let k = rng.gen_range(1..50);
            let input = Tensor::random(Shape::new(n, 1, 1), 64, &mut rng);
            let w = Filters::random(k, n, 1, 1, 16, 0.4, &mut rng);
            let want = fully_connected(&input, &w).unwrap();
            let got = fully_connected_gemm(&input, &w).unwrap();
            assert_eq!(got, want);
        }
        let bad = Filters::zeros(4, 7, 1, 1);
        let input = Tensor::zeros(Shape::new(3, 1, 1));
        assert!(fully_connected_gemm(&input, &bad).is_err());
    }

    #[test]
    fn valid_range_clips_both_sides() {
        // extent_in 5, stride 1, pad 2: tap 0 starts reading at -2.
        assert_eq!(valid_range(9, 0, 1, 0, 2, 5), (2, 7));
        // tap 4 starts at +2: valid until input runs out.
        assert_eq!(valid_range(9, 0, 1, 4, 2, 5), (0, 3));
        // stride 2: output 1 reads input 0.
        assert_eq!(valid_range(4, 0, 2, 0, 2, 5), (1, 4));
        // offset shifts the window (tile starting at out index 3).
        assert_eq!(valid_range(4, 3, 1, 0, 2, 5), (0, 4));
        // degenerate cases.
        assert_eq!(valid_range(4, 0, 0, 0, 0, 5), (0, 0));
        assert_eq!(valid_range(4, 0, 1, 0, 0, 0), (0, 0));
        // tap beyond the input entirely.
        assert_eq!(valid_range(4, 0, 1, 7, 0, 5), (0, 0));
    }

    #[test]
    fn gemm_rejects_mismatched_filters() {
        let input = Tensor::zeros(Shape::new(3, 8, 8));
        let bad = Filters::zeros(8, 4, 3, 3);
        let spec = ConvSpec {
            out_channels: 8,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        assert!(conv2d_gemm(&input, &bad, &spec).is_err());
    }
}
