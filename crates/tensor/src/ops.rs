//! Reference (loop-nest) implementations of the network operators.
//!
//! These are deliberately the simplest possible implementations: they are
//! the functional ground truth that the dataflow executors in
//! `codesign-sim` must match bit-for-bit.

use std::error::Error;
use std::fmt;

use codesign_dnn::{ConvSpec, Shape};

use crate::tensor::{Filters, Tensor};

/// Error returned when operator arguments are dimensionally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    op: &'static str,
    detail: String,
}

impl ShapeMismatchError {
    /// Creates an error for operator `op` (also used by the dataflow
    /// executors in `codesign-sim`, which enforce the same contracts).
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self { op, detail: detail.into() }
    }
}

impl fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op, self.detail)
    }
}

impl Error for ShapeMismatchError {}

/// Validates the shared convolution argument contract (group counts,
/// filter-bank dimensions, spec-fits-input) and returns the inferred
/// output shape. Every convolution implementation — the reference loop
/// nest here, the im2col cross-check, the GEMM fast path, and the
/// dataflow executors in `codesign-sim` — enforces exactly this contract.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] (attributed to operator `op`) when the
/// filter bank does not match the spec/input or the spec does not fit.
pub fn check_conv_args(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    op: &'static str,
) -> Result<Shape, ShapeMismatchError> {
    let in_shape = input.shape();
    if spec.groups == 0
        || !in_shape.channels.is_multiple_of(spec.groups)
        || !spec.out_channels.is_multiple_of(spec.groups)
    {
        return Err(ShapeMismatchError::new(op, "invalid group count"));
    }
    if filters.in_channels() != in_shape.channels / spec.groups
        || filters.out_channels() != spec.out_channels
        || filters.kernel_height() != spec.kernel.height
        || filters.kernel_width() != spec.kernel.width
    {
        return Err(ShapeMismatchError::new(op, "filter bank does not match spec"));
    }
    codesign_dnn::layer::infer_output(&codesign_dnn::LayerOp::Conv(*spec), in_shape)
        .ok_or_else(|| ShapeMismatchError::new(op, "spec does not fit input"))
}

/// Computes a grouped 2-D convolution with zero padding.
///
/// `filters.in_channels()` must equal `input channels / groups` and
/// `filters.out_channels()` must equal `spec.out_channels`.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the filter bank does not match the
/// spec/input, or the spec does not fit the input.
pub fn conv2d(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d")?;
    let in_shape = input.shape();
    let cg = in_shape.channels / spec.groups; // input channels per group
    let kg = spec.out_channels / spec.groups; // filters per group

    let mut out = Tensor::zeros(out_shape);
    for k in 0..spec.out_channels {
        let group = k / kg;
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut acc: i64 = 0;
                for c in 0..cg {
                    let ic = group * cg + c;
                    for dy in 0..spec.kernel.height {
                        for dx in 0..spec.kernel.width {
                            let iy = (oy * spec.stride + dy) as isize - spec.pad_h as isize;
                            let ix = (ox * spec.stride + dx) as isize - spec.pad_w as isize;
                            let v = input.at_padded(ic, iy, ix) as i64;
                            let w = filters.tap(k, c, dy, dx) as i64;
                            acc += v * w;
                        }
                    }
                }
                *out.at_mut(k, oy, ox) = clamp_acc(acc);
            }
        }
    }
    Ok(out)
}

/// Computes a fully-connected layer: `weights` is a [`Filters`] bank with
/// `kh = kw = 1` and `in_channels` equal to the flattened input length.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the weight matrix does not match
/// the flattened input length.
pub fn fully_connected(input: &Tensor, weights: &Filters) -> Result<Tensor, ShapeMismatchError> {
    let n = input.shape().elements();
    if weights.in_channels() != n || weights.kernel_height() != 1 || weights.kernel_width() != 1 {
        return Err(ShapeMismatchError::new("fully_connected", "weight matrix mismatch"));
    }
    let flat = input.as_slice();
    let mut out = Tensor::zeros(Shape::vector(weights.out_channels()));
    for k in 0..weights.out_channels() {
        let mut acc: i64 = 0;
        for (c, &v) in flat.iter().enumerate() {
            acc += v as i64 * weights.tap(k, c, 0, 0) as i64;
        }
        *out.at_mut(k, 0, 0) = clamp_acc(acc);
    }
    Ok(out)
}

/// Max pooling with Caffe ceil-mode output rounding.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the window does not fit.
pub fn max_pool(
    input: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let s = input.shape();
    let oh = codesign_dnn::shape::pool_out_dim_ceil(s.height, kernel, stride, 0)
        .ok_or_else(|| ShapeMismatchError::new("max_pool", "window does not fit"))?;
    let ow = codesign_dnn::shape::pool_out_dim_ceil(s.width, kernel, stride, 0)
        .ok_or_else(|| ShapeMismatchError::new("max_pool", "window does not fit"))?;
    let mut out = Tensor::zeros(Shape::new(s.channels, oh, ow));
    for c in 0..s.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i32::MIN;
                for dy in 0..kernel {
                    for dx in 0..kernel {
                        let iy = oy * stride + dy;
                        let ix = ox * stride + dx;
                        if iy < s.height && ix < s.width {
                            best = best.max(input.at(c, iy, ix));
                        }
                    }
                }
                *out.at_mut(c, oy, ox) = best;
            }
        }
    }
    Ok(out)
}

/// Average pooling (floor-mode rounding, truncating integer division).
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the window does not fit.
pub fn avg_pool(
    input: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let s = input.shape();
    let oh = codesign_dnn::shape::conv_out_dim(s.height, kernel, stride, 0)
        .ok_or_else(|| ShapeMismatchError::new("avg_pool", "window does not fit"))?;
    let ow = codesign_dnn::shape::conv_out_dim(s.width, kernel, stride, 0)
        .ok_or_else(|| ShapeMismatchError::new("avg_pool", "window does not fit"))?;
    let mut out = Tensor::zeros(Shape::new(s.channels, oh, ow));
    let denom = (kernel * kernel) as i64;
    for c in 0..s.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for dy in 0..kernel {
                    for dx in 0..kernel {
                        acc += input.at(c, oy * stride + dy, ox * stride + dx) as i64;
                    }
                }
                *out.at_mut(c, oy, ox) = clamp_acc(acc / denom);
            }
        }
    }
    Ok(out)
}

/// Global average pooling down to `c × 1 × 1`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let s = input.shape();
    let mut out = Tensor::zeros(Shape::vector(s.channels));
    let denom = s.plane() as i64;
    for c in 0..s.channels {
        let mut acc: i64 = 0;
        for y in 0..s.height {
            for x in 0..s.width {
                acc += input.at(c, y, x) as i64;
            }
        }
        *out.at_mut(c, 0, 0) = clamp_acc(acc / denom.max(1));
    }
    out
}

/// Element-wise saturating addition of two equally shaped tensors.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when shapes differ.
pub fn eltwise_add(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeMismatchError> {
    if a.shape() != b.shape() {
        return Err(ShapeMismatchError::new("eltwise_add", "shapes differ"));
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| clamp_acc(x as i64 + y as i64))
        .collect();
    Ok(Tensor::from_vec(a.shape(), data))
}

/// Rectified linear unit.
pub fn relu(input: &Tensor) -> Tensor {
    let data = input.as_slice().iter().map(|&v| v.max(0)).collect();
    Tensor::from_vec(input.shape(), data)
}

/// Saturates a wide accumulator to the `i32` activation range.
///
/// This single clamp, applied exactly once per output element after the
/// full exact `i64` accumulation, is what makes every execution order —
/// naive loop nest, im2col, blocked GEMM, WS/OS schedules — bit-identical:
/// integer addition commutes, so only the final saturation point matters.
#[inline]
pub fn clamp_acc(acc: i64) -> i32 {
    acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::Kernel;

    fn spec(out: usize, k: usize, s: usize, p: usize, groups: usize) -> ConvSpec {
        ConvSpec {
            out_channels: out,
            kernel: Kernel::square(k),
            stride: s,
            pad_h: p,
            pad_w: p,
            groups,
        }
    }

    #[test]
    fn identity_kernel_is_identity() {
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, y, x| (y * 4 + x) as i32);
        // 3x3 kernel with centre 1, same padding.
        let f = Filters::from_fn(1, 1, 3, 3, |_, _, dy, dx| i32::from(dy == 1 && dx == 1));
        let out = conv2d(&input, &f, &spec(1, 3, 1, 1, 1)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn pointwise_conv_is_channel_mix() {
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |c, _, _| if c == 0 { 1 } else { 10 });
        let f = Filters::from_fn(1, 2, 1, 1, |_, c, _, _| if c == 0 { 3 } else { 5 });
        let out = conv2d(&input, &f, &spec(1, 1, 1, 0, 1)).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 3 + 50));
    }

    #[test]
    fn stride_and_pad_shape() {
        let input = Tensor::zeros(Shape::new(3, 227, 227));
        let f = Filters::zeros(96, 3, 11, 11);
        let out = conv2d(&input, &f, &spec(96, 11, 4, 0, 1)).unwrap();
        assert_eq!(out.shape(), Shape::new(96, 55, 55));
    }

    #[test]
    fn depthwise_keeps_channels_independent() {
        let input = Tensor::from_fn(Shape::new(2, 3, 3), |c, _, _| if c == 0 { 1 } else { 100 });
        // Each channel's filter sums its own 3x3 neighbourhood (weight 1).
        let f = Filters::from_fn(2, 1, 3, 3, |_, _, _, _| 1);
        let s = ConvSpec {
            out_channels: 2,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 2,
        };
        let out = conv2d(&input, &f, &s).unwrap();
        // Centre pixel sees all 9 neighbours.
        assert_eq!(out.at(0, 1, 1), 9);
        assert_eq!(out.at(1, 1, 1), 900);
        // Corner sees 4.
        assert_eq!(out.at(0, 0, 0), 4);
    }

    #[test]
    fn grouped_conv_blocks_cross_talk() {
        // 2 groups, input channel 0 -> group 0, channel 1 -> group 1.
        let input = Tensor::from_fn(Shape::new(2, 1, 1), |c, _, _| if c == 0 { 1 } else { 1000 });
        let f = Filters::from_fn(2, 1, 1, 1, |_, _, _, _| 1);
        let s = spec(2, 1, 1, 0, 2);
        let out = conv2d(&input, &f, &s).unwrap();
        assert_eq!(out.at(0, 0, 0), 1);
        assert_eq!(out.at(1, 0, 0), 1000);
    }

    #[test]
    fn conv_rejects_mismatched_filters() {
        let input = Tensor::zeros(Shape::new(3, 8, 8));
        let f = Filters::zeros(8, 4, 3, 3);
        assert!(conv2d(&input, &f, &spec(8, 3, 1, 1, 1)).is_err());
    }

    #[test]
    fn fc_is_matrix_vector() {
        let input = Tensor::from_vec(Shape::new(2, 1, 2), vec![1, 2, 3, 4]);
        let w = Filters::from_fn(2, 4, 1, 1, |k, c, _, _| if k == 0 { 1 } else { c as i32 });
        let out = fully_connected(&input, &w).unwrap();
        assert_eq!(out.as_slice(), &[10, 2 + 6 + 12]);
    }

    #[test]
    fn fc_rejects_bad_width() {
        let input = Tensor::zeros(Shape::new(2, 2, 2));
        let w = Filters::zeros(10, 7, 1, 1);
        assert!(fully_connected(&input, &w).is_err());
    }

    #[test]
    fn max_pool_ceil_covers_edges() {
        // 5x5 input, 2x2 stride 2 ceil -> 3x3; edge windows are partial.
        let input = Tensor::from_fn(Shape::new(1, 5, 5), |_, y, x| (y * 5 + x) as i32);
        let out = max_pool(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), Shape::new(1, 3, 3));
        assert_eq!(out.at(0, 0, 0), 6);
        assert_eq!(out.at(0, 2, 2), 24);
    }

    #[test]
    fn avg_pool_truncates() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1, 2, 3, 5]);
        let out = avg_pool(&input, 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[2]); // 11/4 = 2
    }

    #[test]
    fn global_avg_pool_averages_planes() {
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |c, _, _| (c as i32 + 1) * 4);
        let out = global_avg_pool(&input);
        assert_eq!(out.as_slice(), &[4, 8]);
    }

    #[test]
    fn eltwise_add_saturates() {
        let a = Tensor::from_vec(Shape::new(1, 1, 1), vec![i32::MAX]);
        let b = Tensor::from_vec(Shape::new(1, 1, 1), vec![1]);
        assert_eq!(eltwise_add(&a, &b).unwrap().as_slice(), &[i32::MAX]);
        let c = Tensor::zeros(Shape::new(1, 2, 1));
        assert!(eltwise_add(&a, &c).is_err());
    }

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(Shape::new(1, 1, 3), vec![-5, 0, 5]);
        assert_eq!(relu(&t).as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn clamp_acc_saturates_exactly_at_i32_bounds() {
        // The boundary values themselves pass through unclamped...
        assert_eq!(clamp_acc(i32::MAX as i64), i32::MAX);
        assert_eq!(clamp_acc(i32::MIN as i64), i32::MIN);
        assert_eq!(clamp_acc(0), 0);
        // ...one past saturates...
        assert_eq!(clamp_acc(i32::MAX as i64 + 1), i32::MAX);
        assert_eq!(clamp_acc(i32::MIN as i64 - 1), i32::MIN);
        // ...and so does the far end of the i64 range.
        assert_eq!(clamp_acc(i64::MAX), i32::MAX);
        assert_eq!(clamp_acc(i64::MIN), i32::MIN);
    }

    #[test]
    fn conv_saturates_wide_accumulators() {
        // A single 1x1 product of i32::MAX * ±2 overflows i32 in both
        // directions; the i64 accumulator must carry it and the output
        // must saturate rather than wrap.
        let spec = ConvSpec {
            out_channels: 2,
            kernel: Kernel::square(1),
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        };
        let input = Tensor::from_vec(Shape::new(1, 1, 1), vec![i32::MAX]);
        let f = Filters::from_fn(2, 1, 1, 1, |k, _, _, _| if k == 0 { 2 } else { -2 });
        let out = conv2d(&input, &f, &spec).unwrap();
        assert_eq!(out.as_slice(), &[i32::MAX, i32::MIN]);

        // i32::MIN * 1 is exactly representable: no spurious clamping.
        let input = Tensor::from_vec(Shape::new(1, 1, 1), vec![i32::MIN]);
        let eye = Filters::from_fn(2, 1, 1, 1, |k, _, _, _| i32::from(k == 0));
        let out = conv2d(&input, &eye, &spec).unwrap();
        assert_eq!(out.as_slice(), &[i32::MIN, 0]);
    }

    #[test]
    fn fc_saturates_wide_accumulators() {
        let input = Tensor::from_vec(Shape::new(2, 1, 1), vec![i32::MAX, i32::MAX]);
        let w = Filters::from_fn(2, 2, 1, 1, |k, _, _, _| if k == 0 { 1 } else { -1 });
        let out = fully_connected(&input, &w).unwrap();
        // Sum of two i32::MAX overflows i32 by almost 2x either way.
        assert_eq!(out.as_slice(), &[i32::MAX, i32::MIN]);
    }
}
