//! # codesign-tensor — functional ground truth
//!
//! A minimal integer tensor library with reference implementations of
//! every operator in the DNN IR, an independent im2col/GEMM convolution
//! for cross-checking, and a whole-network functional executor.
//!
//! The Squeezelerator's dataflow executors (`codesign-sim`) must produce
//! bit-identical results to [`ops::conv2d`]; the tests in this crate pin
//! that ground truth down.
//!
//! # Examples
//!
//! ```
//! use codesign_dnn::{NetworkBuilder, Shape};
//! use codesign_tensor::{run_network, Tensor, WeightStore};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = NetworkBuilder::new("demo", Shape::new(3, 32, 32))
//!     .conv("conv1", 16, 3, 2, 1)
//!     .fire("fire2", 8, 16, 16)
//!     .global_avg_pool("gap")
//!     .fully_connected("fc", 10)
//!     .finish()?;
//! let weights = WeightStore::random(&net, 8, 0.4, &mut rng);
//! let image = Tensor::random(net.input(), 64, &mut rng);
//! let activations = run_network(&net, &image, &weights)?;
//! assert_eq!(activations.final_output().shape(), Shape::vector(10));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod execute;
pub mod gemm;
pub mod im2col;
pub mod ops;
pub mod quant;
pub mod tensor;

pub use execute::{
    run_layer, run_layer_reference, run_layer_with, run_network, run_network_reference,
    run_network_with, ActivationBuilder, NetworkActivations, RunNetworkError, WeightStore,
};
pub use gemm::{conv2d_gemm, conv2d_gemm_jobs, fully_connected_gemm, fully_connected_gemm_jobs};
pub use im2col::conv2d_im2col;
pub use ops::ShapeMismatchError;
pub use quant::{sqnr_db, QuantScale};
pub use tensor::{Filters, Tensor};
