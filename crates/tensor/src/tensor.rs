//! Dense integer tensors in channel-height-width layout.

use std::fmt;

use codesign_dnn::Shape;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// A dense `channels × height × width` tensor of `i32` activations.
///
/// The Squeezelerator datapath is a 16-bit integer multiplier with a wider
/// accumulator; activations here are kept within `i16` range by
/// construction (see [`Tensor::random`]) while the storage type is `i32`
/// so intermediate sums never overflow in the functional model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<i32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Self { shape, data: vec![0; shape.elements()] }
    }

    /// Creates a tensor from a generating function `(c, y, x) -> value`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> i32) -> Self {
        let mut data = Vec::with_capacity(shape.elements());
        for c in 0..shape.channels {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    data.push(f(c, y, x));
                }
            }
        }
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from
    /// `-range..=range` (clamped to `i16` range).
    pub fn random(shape: Shape, range: i32, rng: &mut impl Rng) -> Self {
        let range = range.clamp(0, i16::MAX as i32);
        let dist = Uniform::new_inclusive(-range, range);
        let data = (0..shape.elements()).map(|_| dist.sample(rng)).collect();
        Self { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.elements()`.
    pub fn from_vec(shape: Shape, data: Vec<i32>) -> Self {
        assert_eq!(
            data.len(),
            shape.elements(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> i32 {
        debug_assert!(c < self.shape.channels && y < self.shape.height && x < self.shape.width);
        self.data[(c * self.shape.height + y) * self.shape.width + x]
    }

    /// Element at `(c, y, x)` where `y`/`x` may fall outside the feature
    /// map (returns the zero-padding value `0`).
    #[inline]
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> i32 {
        if y < 0 || x < 0 || y as usize >= self.shape.height || x as usize >= self.shape.width {
            0
        } else {
            self.at(c, y as usize, x as usize)
        }
    }

    /// Mutable element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut i32 {
        debug_assert!(c < self.shape.channels && y < self.shape.height && x < self.shape.width);
        &mut self.data[(c * self.shape.height + y) * self.shape.width + x]
    }

    /// The flat backing slice (CHW order).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// The contiguous `height × width` plane of channel `c` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn channel_plane(&self, c: usize) -> &[i32] {
        let plane = self.shape.plane();
        &self.data[c * plane..(c + 1) * plane]
    }

    /// The mutable flat backing slice (CHW order).
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Concatenates tensors along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics if spatial dimensions disagree or `parts` is empty.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of at least one tensor");
        let first = &parts[0];
        let (h, w) = (first.shape.height, first.shape.width);
        let mut data = Vec::new();
        let mut channels = 0;
        for p in parts {
            assert_eq!(
                (p.shape.height, p.shape.width),
                (h, w),
                "concat requires equal spatial dims"
            );
            channels += p.shape.channels;
            data.extend_from_slice(&p.data);
        }
        Tensor { shape: Shape::new(channels, h, w), data }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({})", self.shape)
    }
}

/// A bank of convolution filters: `out_channels` filters of
/// `in_channels_per_group × kh × kw` taps each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filters {
    out_channels: usize,
    in_channels: usize,
    kh: usize,
    kw: usize,
    data: Vec<i32>,
}

impl Filters {
    /// Creates a zero-filled filter bank. `in_channels` is the per-group
    /// input channel count (i.e. already divided by `groups`).
    pub fn zeros(out_channels: usize, in_channels: usize, kh: usize, kw: usize) -> Self {
        Self {
            out_channels,
            in_channels,
            kh,
            kw,
            data: vec![0; out_channels * in_channels * kh * kw],
        }
    }

    /// Creates filters with taps drawn uniformly from `-range..=range`,
    /// then forces approximately `sparsity` (0..=1) of the taps to zero —
    /// matching the paper's "conservatively model the sparsity ... at
    /// 40 %".
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not within `0.0..=1.0`.
    pub fn random(
        out_channels: usize,
        in_channels: usize,
        kh: usize,
        kw: usize,
        range: i32,
        sparsity: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in 0..=1");
        let dist = Uniform::new_inclusive(-range.max(1), range.max(1));
        let data = (0..out_channels * in_channels * kh * kw)
            .map(|_| if rng.gen::<f64>() < sparsity { 0 } else { dist.sample(rng) })
            .collect();
        Self { out_channels, in_channels, kh, kw, data }
    }

    /// From a generating function `(k, c, dy, dx) -> tap`.
    pub fn from_fn(
        out_channels: usize,
        in_channels: usize,
        kh: usize,
        kw: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> i32,
    ) -> Self {
        let mut data = Vec::with_capacity(out_channels * in_channels * kh * kw);
        for k in 0..out_channels {
            for c in 0..in_channels {
                for dy in 0..kh {
                    for dx in 0..kw {
                        data.push(f(k, c, dy, dx));
                    }
                }
            }
        }
        Self { out_channels, in_channels, kh, kw, data }
    }

    /// Number of filters (output channels).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Per-group input channels each filter spans.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel height.
    pub fn kernel_height(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kernel_width(&self) -> usize {
        self.kw
    }

    /// Tap `(k, c, dy, dx)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn tap(&self, k: usize, c: usize, dy: usize, dx: usize) -> i32 {
        debug_assert!(
            k < self.out_channels && c < self.in_channels && dy < self.kh && dx < self.kw
        );
        self.data[((k * self.in_channels + c) * self.kh + dy) * self.kw + dx]
    }

    /// All taps of filter `k` as one contiguous slice in `(c, dy, dx)`
    /// order — exactly the row order the im2col lowering uses, so the
    /// GEMM path can dot this slice against a packed patch directly.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    #[inline]
    pub fn filter_taps(&self, k: usize) -> &[i32] {
        let len = self.in_channels * self.kh * self.kw;
        &self.data[k * len..(k + 1) * len]
    }

    /// The flat backing slice (`(k, c, dy, dx)` order).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Fraction of zero taps (the sparsity the OS dataflow exploits).
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&t| t == 0).count() as f64 / self.data.len() as f64
    }

    /// Total tap count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the bank holds no taps.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(Shape::new(2, 3, 4));
        *t.at_mut(1, 2, 3) = 42;
        assert_eq!(t.at(1, 2, 3), 42);
        assert_eq!(t.as_slice()[2 * 12 - 1], 42);
    }

    #[test]
    fn from_fn_is_chw_order() {
        let t = Tensor::from_fn(Shape::new(2, 2, 2), |c, y, x| (c * 100 + y * 10 + x) as i32);
        assert_eq!(t.as_slice(), &[0, 1, 10, 11, 100, 101, 110, 111]);
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let t = Tensor::from_fn(Shape::new(1, 2, 2), |_, _, _| 7);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, 2), 0);
        assert_eq!(t.at_padded(0, 1, 1), 7);
    }

    #[test]
    fn random_respects_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::random(Shape::new(4, 8, 8), 100, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-100..=100).contains(&v)));
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_fn(Shape::new(1, 2, 2), |_, _, _| 1);
        let b = Tensor::from_fn(Shape::new(2, 2, 2), |_, _, _| 2);
        let c = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(c.shape(), Shape::new(3, 2, 2));
        assert_eq!(c.at(0, 0, 0), 1);
        assert_eq!(c.at(1, 1, 1), 2);
        assert_eq!(c.at(2, 1, 1), 2);
    }

    #[test]
    #[should_panic(expected = "equal spatial dims")]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(Shape::new(1, 2, 2));
        let b = Tensor::zeros(Shape::new(1, 3, 2));
        let _ = Tensor::concat_channels(&[&a, &b]);
    }

    #[test]
    fn filters_sparsity_is_controlled() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = Filters::random(64, 64, 3, 3, 100, 0.4, &mut rng);
        let z = f.zero_fraction();
        assert!((z - 0.4).abs() < 0.03, "zero fraction = {z}");
        let dense = Filters::random(16, 16, 3, 3, 100, 0.0, &mut rng);
        // Uniform over -100..=100 hits 0 rarely; allow a small fraction.
        assert!(dense.zero_fraction() < 0.02);
    }

    #[test]
    fn filter_tap_layout() {
        let f =
            Filters::from_fn(2, 2, 2, 2, |k, c, dy, dx| (k * 1000 + c * 100 + dy * 10 + dx) as i32);
        assert_eq!(f.tap(1, 1, 0, 1), 1101);
        assert_eq!(f.len(), 16);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(Shape::new(1, 2, 2), vec![0; 3]);
    }
}
