//! Minimal self-contained SVG rendering for the figure artifacts.
//!
//! No plotting dependency: the two figure shapes the paper uses — a
//! labeled scatter (Figure 4) and a horizontal bar chart with a
//! utilization series (Figures 1/3) — are emitted directly as SVG
//! markup.

use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// One scatter point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// Point label.
    pub label: String,
    /// X value (cost: time or energy).
    pub x: f64,
    /// Y value (accuracy).
    pub y: f64,
    /// Series index (colors cycle per family).
    pub series: usize,
}

const PALETTE: [&str; 6] = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#9c6b4e"];

/// Renders a labeled scatter plot (Figure-4 style: "higher and to the
/// left is better").
///
/// Returns a complete standalone SVG document. Empty input yields a
/// frame with axes only.
pub fn scatter_svg(title: &str, x_label: &str, y_label: &str, points: &[ScatterPoint]) -> String {
    let (w, h) = (720.0, 480.0);
    let (ml, mr, mt, mb) = (70.0, 30.0, 50.0, 60.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let (xmin, xmax) = bounds(points.iter().map(|p| p.x));
    let (ymin, ymax) = bounds(points.iter().map(|p| p.y));
    let sx = |x: f64| ml + (x - xmin) / (xmax - xmin).max(f64::MIN_POSITIVE) * pw;
    let sy = |y: f64| mt + ph - (y - ymin) / (ymax - ymin).max(f64::MIN_POSITIVE) * ph;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = writeln!(s, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        s,
        r#"<text x="{}" y="28" text-anchor="middle" font-size="16">{}</text>"#,
        w / 2.0,
        esc(title)
    );
    // Axes.
    let _ = writeln!(
        s,
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        mt + ph,
        ml + pw,
        mt + ph
    );
    let _ = writeln!(s, r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#, mt + ph);
    let _ = writeln!(
        s,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        ml + pw / 2.0,
        h - 14.0,
        esc(x_label)
    );
    let _ = writeln!(
        s,
        r#"<text x="18" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 18 {})">{}</text>"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        esc(y_label)
    );
    // Ticks (min/max).
    for (v, x) in [(xmin, ml), (xmax, ml + pw)] {
        let _ = writeln!(
            s,
            r#"<text x="{x}" y="{}" text-anchor="middle" font-size="10">{v:.1}</text>"#,
            mt + ph + 16.0
        );
    }
    for (v, y) in [(ymin, mt + ph), (ymax, mt)] {
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{v:.1}</text>"#,
            ml - 6.0,
            y + 4.0
        );
    }
    for p in points {
        let color = PALETTE[p.series % PALETTE.len()];
        let (cx, cy) = (sx(p.x), sy(p.y));
        let _ = writeln!(s, r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="5" fill="{color}"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="9">{}</text>"#,
            cx + 7.0,
            cy + 3.0,
            esc(&p.label)
        );
    }
    let _ = writeln!(s, "</svg>");
    s
}

/// Renders a horizontal bar chart with an optional secondary percentage
/// (Figure-1/3 style: per-layer cycles with the utilization line).
pub fn bars_svg(title: &str, bars: &[crate::chart::Bar]) -> String {
    let row_h = 16.0;
    let (ml, mr, mt, mb) = (190.0, 110.0, 46.0, 20.0);
    let pw = 440.0;
    let h = mt + mb + row_h * bars.len() as f64;
    let w = ml + pw + mr;
    let max = bars.iter().map(|b| b.value).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = writeln!(s, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = writeln!(
        s,
        r#"<text x="{}" y="26" text-anchor="middle" font-size="15">{}</text>"#,
        w / 2.0,
        esc(title)
    );
    for (i, b) in bars.iter().enumerate() {
        let y = mt + row_h * i as f64;
        let bw = (b.value / max).clamp(0.0, 1.0) * pw;
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="10">{}</text>"#,
            ml - 6.0,
            y + row_h - 5.0,
            esc(&b.label)
        );
        let _ = writeln!(
            s,
            r#"<rect x="{ml}" y="{:.1}" width="{bw:.1}" height="{:.1}" fill="{}"/>"#,
            y + 2.0,
            row_h - 4.0,
            PALETTE[0]
        );
        let note = match b.secondary {
            Some(u) => format!("{:.0} ({:.0}%)", b.value, 100.0 * u.clamp(0.0, 1.0)),
            None => format!("{:.0}", b.value),
        };
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="9">{}</text>"#,
            ml + bw + 5.0,
            y + row_h - 5.0,
            esc(&note)
        );
    }
    let _ = writeln!(s, "</svg>");
    s
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    if min == max {
        return (min - 0.5, max + 0.5);
    }
    // 5% padding.
    let pad = (max - min) * 0.05;
    (min - pad, max + pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Bar;

    fn points() -> Vec<ScatterPoint> {
        vec![
            ScatterPoint { label: "a".into(), x: 1.0, y: 55.0, series: 0 },
            ScatterPoint { label: "b & co".into(), x: 2.0, y: 60.0, series: 1 },
        ]
    }

    #[test]
    fn scatter_is_wellformed_svg() {
        let svg = scatter_svg("Figure 4", "time (ms)", "top-1 (%)", &points());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 2);
        // Escaping.
        assert!(svg.contains("b &amp; co"));
        assert!(svg.contains("Figure 4"));
    }

    #[test]
    fn scatter_handles_empty_and_degenerate_input() {
        let svg = scatter_svg("t", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
        let one = vec![ScatterPoint { label: "only".into(), x: 3.0, y: 3.0, series: 0 }];
        let svg = scatter_svg("t", "x", "y", &one);
        assert_eq!(svg.matches("<circle").count(), 1);
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn bars_render_one_rect_per_bar() {
        let bars = vec![
            Bar { label: "conv1".into(), value: 10.0, secondary: Some(0.5) },
            Bar { label: "fire2".into(), value: 5.0, secondary: None },
        ];
        let svg = bars_svg("Figure 1", &bars);
        // One background rect + two bar rects.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("(50%)"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn series_colors_cycle() {
        let many: Vec<ScatterPoint> = (0..8)
            .map(|i| ScatterPoint { label: format!("p{i}"), x: i as f64, y: i as f64, series: i })
            .collect();
        let svg = scatter_svg("t", "x", "y", &many);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[5]));
    }
}
