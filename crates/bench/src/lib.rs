//! # codesign-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation as
//! markdown/CSV (see the `report` binary), and hosts the benches
//! measuring the simulator itself (built on the in-tree [`stopwatch`]
//! harness, since the offline environment cannot fetch Criterion).
//!
//! # Examples
//!
//! ```
//! use codesign_bench::{experiments, experiments::Context};
//!
//! let t = experiments::table1(&Context::paper_default());
//! assert!(t.to_markdown().contains("SqueezeNet"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod dse_bench;
pub mod experiments;
pub mod functional_bench;
pub mod report_json;
pub mod serve_bench;
pub mod stopwatch;
pub mod svg;
pub mod table;

pub use chart::{bar_chart, Bar};
pub use dse_bench::DseBench;
pub use experiments::Context;
pub use functional_bench::FunctionalBench;
pub use report_json::{
    BenchReport, ExperimentTiming, NetworkHeadline, SweepBench, BENCH_REPORT_SCHEMA,
    SWEEP_BASELINE_WALL_MS,
};
pub use serve_bench::ServeBench;
pub use svg::{bars_svg, scatter_svg, ScatterPoint};
pub use table::Table;
