//! A minimal wall-clock micro-benchmark harness.
//!
//! Criterion is unavailable in the offline build environment, so the
//! `harness = false` benches use this instead: each benchmark runs a
//! warm-up pass, then a fixed number of timed samples, and reports the
//! median, minimum, and mean per-iteration time on stdout.

use std::time::{Duration, Instant};

/// Formats a duration as an adaptive human-readable string.
fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// One timed result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
}

/// A named group of benchmarks (mirrors Criterion's `benchmark_group`).
pub struct Stopwatch {
    group: String,
    samples: usize,
}

impl Stopwatch {
    /// Starts a group; `samples` timed samples are taken per benchmark.
    pub fn group(name: impl Into<String>, samples: usize) -> Self {
        Self { group: name.into(), samples: samples.max(3) }
    }

    /// Times `f`, printing one line `group/name  median  (min .. mean)`.
    /// The closure's return value is consumed via `std::hint::black_box`
    /// so the work is not optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Measurement {
        // Warm up and pick an iteration count targeting ~10 ms per sample.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                // Round the per-iteration time up to a whole nanosecond:
                // plain `Duration / iters` truncates sub-ns workloads to
                // zero, which misreports any measured nonzero elapsed.
                let total = t.elapsed();
                Duration::from_nanos((total.as_nanos() as u64).div_ceil(iters as u64))
            })
            .collect();
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        let m = Measurement { median, min, mean };
        println!(
            "{:<52} {:>12}  (min {:>10}, mean {:>10}, {} x {} iters)",
            format!("{}/{}", self.group, name),
            human(median),
            human(min),
            human(mean),
            self.samples,
            iters
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let sw = Stopwatch::group("test", 3);
        let m = sw.bench("spin", || (0..1000u64).sum::<u64>());
        assert!(m.median > Duration::ZERO);
        assert!(m.min <= m.median);
    }

    #[test]
    fn human_formats_scale() {
        assert!(human(Duration::from_nanos(500)).contains("ns"));
        assert!(human(Duration::from_micros(500)).contains("µs"));
        assert!(human(Duration::from_millis(500)).contains("ms"));
        assert!(human(Duration::from_secs(500)).contains('s'));
    }
}
