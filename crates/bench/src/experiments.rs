//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function regenerates one artifact as a [`Table`] (figures are
//! emitted as the CSV series a plotting tool would consume). The
//! experiment ids match DESIGN.md §5.

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign_core::{
    advantage_range_with, compare_all, machine_balance, pareto_front, roofline, spectrum_with,
    CodesignStudy, CostAxis, NetworkSchedule, SweepSpace,
};
use codesign_dnn::{zoo, LayerClass, MacBreakdown, Network};
use codesign_sim::{
    compare_taxonomy, simulate_network_batched, simulate_network_event, simulate_network_multicore,
    MultiCoreConfig, OsModelOptions, SimOptions, Simulator, SparsityModel, TaxonomyDataflow,
    TrafficModel, WeightCompression,
};

use crate::table::Table;

/// Shared experiment context: the hardware point and model options every
/// artifact is generated with.
#[derive(Debug, Clone)]
pub struct Context {
    /// Accelerator configuration (paper default: 32×32, RF 16, 128 KB).
    pub cfg: AcceleratorConfig,
    /// Simulation options (paper default: 40 % sparsity skipped by OS).
    pub opts: SimOptions,
    /// Energy table.
    pub energy: EnergyModel,
    /// Shared simulation handle. Every artifact routes per-layer
    /// simulation through this, so repeated shapes across tables are
    /// memoized once; cloning a `Context` shares the cache.
    pub sim: Simulator,
    /// Worker threads for the fan-out experiments (`0` = one per core).
    pub jobs: usize,
}

impl Context {
    /// The paper's evaluation context, with a fresh memoizing simulator
    /// and one worker per core.
    pub fn paper_default() -> Self {
        Self {
            cfg: AcceleratorConfig::paper_default(),
            opts: SimOptions::paper_default(),
            energy: EnergyModel::default(),
            sim: Simulator::new(),
            jobs: 0,
        }
    }

    /// The paper's evaluation context pinned to `jobs` worker threads.
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs, ..Self::paper_default() }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::paper_default()
    }
}

fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// **T1** — Table 1: relative percentage of MAC operations per layer type
/// for each network.
pub fn table1(_ctx: &Context) -> Table {
    let mut t = Table::new(
        "Table 1: MAC share per layer type",
        &["Network", "Conv1", "1x1", "FxF", "DW", "FC"],
    );
    for net in zoo::table_networks() {
        let b = MacBreakdown::of(&net);
        t.push_row(vec![
            net.name().to_owned(),
            pct(b.fraction(LayerClass::FirstConv)),
            pct(b.fraction(LayerClass::Pointwise)),
            pct(b.fraction(LayerClass::Spatial)),
            pct(b.fraction(LayerClass::Depthwise)),
            pct(b.fraction(LayerClass::FullyConnected)),
        ]);
    }
    t
}

/// **T2** — Table 2: Squeezelerator speedup and energy reduction over the
/// fixed OS and WS reference architectures.
pub fn table2(ctx: &Context) -> Table {
    let mut t = Table::new(
        "Table 2: Squeezelerator vs fixed-dataflow references",
        &["Network", "Speedup vs OS", "Speedup vs WS", "Energy vs OS", "Energy vs WS"],
    );
    let nets = zoo::table_networks();
    for c in compare_all(&ctx.sim, &nets, &ctx.cfg, ctx.opts, ctx.energy, ctx.jobs) {
        t.push_row(vec![
            c.network.clone(),
            format!("{:.2}x", c.speedup_vs_os()),
            format!("{:.2}x", c.speedup_vs_ws()),
            pct(c.energy_reduction_vs_os()),
            pct(c.energy_reduction_vs_ws()),
        ]);
    }
    t
}

fn per_layer_series(net: &Network, ctx: &Context, title: &str) -> Table {
    let schedule = NetworkSchedule::build_with(&ctx.sim, net, &ctx.cfg, ctx.opts);
    let mut t = Table::new(
        title,
        &["Layer", "Class", "WS cycles", "OS cycles", "Chosen", "Hybrid cycles", "Utilization"],
    );
    for e in &schedule.entries {
        t.push_row(vec![
            e.name.clone(),
            e.class.to_string(),
            e.ws_cycles.to_string(),
            e.os_cycles.to_string(),
            e.chosen.map_or("SIMD".to_owned(), |d| d.tag().to_owned()),
            e.hybrid_cycles.to_string(),
            format!("{:.3}", e.utilization),
        ]);
    }
    t
}

/// **F1** — Figure 1: per-layer inference time and utilization of
/// SqueezeNet v1.0 on the reference WS/OS architectures and the
/// Squeezelerator.
pub fn fig1(ctx: &Context) -> Table {
    per_layer_series(
        &zoo::squeezenet_v1_0(),
        ctx,
        "Figure 1: SqueezeNet v1.0 per-layer time and utilization",
    )
}

/// **F3** — Figure 3: per-layer inference time and utilization of the
/// five 1.0-SqNxt-23 co-design variants (one table per variant,
/// concatenated with a Variant column).
pub fn fig3(ctx: &Context) -> Table {
    let mut t = Table::new(
        "Figure 3: SqueezeNext v1-v5 per-layer time and utilization",
        &["Variant", "Layer", "Class", "Hybrid cycles", "Utilization"],
    );
    for net in zoo::squeezenext_variants() {
        let schedule = NetworkSchedule::build_with(&ctx.sim, &net, &ctx.cfg, ctx.opts);
        for e in &schedule.entries {
            t.push_row(vec![
                net.name().to_owned(),
                e.name.clone(),
                e.class.to_string(),
                e.hybrid_cycles.to_string(),
                format!("{:.3}", e.utilization),
            ]);
        }
    }
    t
}

/// The model families plotted in Figure 4.
pub fn fig4_networks() -> Vec<Network> {
    let mut nets = zoo::squeezenext_family();
    nets.push(zoo::squeezenet_v1_0());
    nets.push(zoo::squeezenet_v1_1());
    nets.push(zoo::tiny_darknet());
    nets.extend(zoo::mobilenet_family());
    nets
}

/// **F4** — Figure 4: accuracy vs energy and accuracy vs inference time
/// for the model families, with Pareto membership flags.
pub fn fig4(ctx: &Context) -> Table {
    let nets = fig4_networks();
    let points = spectrum_with(&ctx.sim, &nets, &ctx.cfg, ctx.opts, &ctx.energy);
    let time_front = pareto_front(&points, CostAxis::Time);
    let energy_front = pareto_front(&points, CostAxis::Energy);
    let mut t = Table::new(
        "Figure 4: accuracy vs energy and inference time",
        &["Model", "Top-1", "Time (ms)", "Energy (MMAC-eq)", "Time-Pareto", "Energy-Pareto"],
    );
    for p in &points {
        t.push_row(vec![
            p.name.clone(),
            format!("{:.1}", p.accuracy),
            format!("{:.3}", p.time_ms),
            format!("{:.2}", p.energy / 1e6),
            time_front.iter().any(|q| q.name == p.name).to_string(),
            energy_front.iter().any(|q| q.name == p.name).to_string(),
        ]);
    }
    t
}

/// **S1** — §4.1.1 in-text dataflow-advantage ranges per layer class.
pub fn ranges(ctx: &Context) -> Table {
    let nets = zoo::table_networks();
    let mut t = Table::new(
        "S1: dataflow advantage ranges per layer class",
        &["Class", "Winner", "Min", "Max", "Samples", "Paper"],
    );
    let rows: [(LayerClass, Dataflow, &str); 3] = [
        (LayerClass::Pointwise, Dataflow::WeightStationary, "1.4x - 7.0x"),
        (LayerClass::FirstConv, Dataflow::OutputStationary, "1.6x - 6.3x"),
        (LayerClass::Depthwise, Dataflow::OutputStationary, "19x - 96x"),
    ];
    for (class, winner, paper) in rows {
        if let Some(r) = advantage_range_with(&ctx.sim, &nets, class, winner, &ctx.cfg, ctx.opts) {
            t.push_row(vec![
                class.to_string(),
                winner.tag().to_owned(),
                format!("{:.2}x", r.min),
                format!("{:.2}x", r.max),
                r.samples.to_string(),
                paper.to_owned(),
            ]);
        }
    }
    t
}

/// **S3** — §4.2 co-design study: the v1..v5 ladder before/after the RF
/// tune-up, plus the headline comparisons against SqueezeNet v1.0 and
/// AlexNet.
pub fn codesign(ctx: &Context) -> Table {
    let study = CodesignStudy::run_with(&ctx.sim, ctx.opts, &ctx.energy, ctx.jobs);
    let mut t = Table::new(
        "S3: co-design ladder (v1..v5, RF 8 vs RF 16)",
        &[
            "Variant",
            "Cycles (RF 8)",
            "Cycles (RF 16)",
            "Energy (RF 16)",
            "Utilization",
            "MACs (M)",
        ],
    );
    for (b, a) in study.before_tuneup.iter().zip(&study.after_tuneup) {
        t.push_row(vec![
            a.name.clone(),
            b.cycles.to_string(),
            a.cycles.to_string(),
            format!("{:.2}M", a.energy / 1e6),
            format!("{:.3}", a.utilization),
            format!("{:.0}", a.macs as f64 / 1e6),
        ]);
    }
    t
}

/// Headline §4.2 comparisons on the tuned hardware.
pub fn headlines(ctx: &Context) -> Table {
    let mut t = Table::new(
        "S3 headlines: SqueezeNext vs baselines (hybrid architecture)",
        &["Comparison", "Speedup", "Energy gain", "Paper"],
    );
    let sqnxt = zoo::squeezenext();
    for (base, paper) in
        [(zoo::squeezenet_v1_0(), "2.59x / 2.25x"), (zoo::alexnet(), "8.26x / 7.5x")]
    {
        let r = codesign_core::compare_networks_with(
            &ctx.sim,
            &sqnxt,
            &base,
            &ctx.cfg,
            ctx.opts,
            &ctx.energy,
        );
        t.push_row(vec![
            format!("{} vs {}", sqnxt.name(), base.name()),
            format!("{:.2}x", r.speedup),
            format!("{:.2}x", r.energy_gain),
            paper.to_owned(),
        ]);
    }
    t
}

/// **A1a** — design-space sweep over array size / RF depth / buffer.
pub fn dse_sweep(ctx: &Context) -> Table {
    let pts = codesign_core::sweep_with(
        &ctx.sim,
        &zoo::squeezenet_v1_0(),
        &SweepSpace::paper_default(),
        ctx.opts,
        &ctx.energy,
        ctx.jobs,
    )
    .expect("the paper-default sweep space is non-empty");
    let front = codesign_core::pareto_designs(&pts);
    let mut t = Table::new(
        "A1a: design-space sweep (SqueezeNet v1.0)",
        &["Design", "Cycles", "Energy (MMAC-eq)", "Utilization", "EDP", "Area", "Pareto"],
    );
    for p in &pts {
        t.push_row(vec![
            p.params.to_string(),
            p.cycles.to_string(),
            format!("{:.2}", p.energy / 1e6),
            format!("{:.3}", p.utilization),
            format!("{:.3e}", p.energy_delay()),
            format!("{:.0}", p.area),
            front.iter().any(|q| q.params == p.params).to_string(),
        ]);
    }
    t
}

/// **A1b** — ablations: sparsity skipping, preload overlap, channel
/// packing, and double buffering, each toggled off individually on the
/// paper configuration.
pub fn ablations(ctx: &Context) -> Table {
    let net = zoo::squeezenet_v1_0();
    let mut t = Table::new(
        "A1b: ablation study (SqueezeNet v1.0, hybrid architecture)",
        &["Configuration", "Cycles", "Slowdown", "Energy (MMAC-eq)"],
    );
    let base = ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
    let base_cycles = base.total_cycles();
    let mut push = |name: &str, cfg: &AcceleratorConfig, opts: SimOptions| {
        let perf = ctx.sim.simulate_network(&net, cfg, DataflowPolicy::PerLayer, opts);
        t.push_row(vec![
            name.to_owned(),
            perf.total_cycles().to_string(),
            format!("{:.2}x", perf.total_cycles() as f64 / base_cycles as f64),
            format!("{:.2}", perf.total_energy(&ctx.energy) / 1e6),
        ]);
    };
    push("paper default", &ctx.cfg, ctx.opts);
    push(
        "no sparsity skipping",
        &ctx.cfg,
        SimOptions { os: ctx.opts.os.with_sparsity(SparsityModel::dense()), ..ctx.opts },
    );
    push(
        "no preload overlap",
        &ctx.cfg,
        SimOptions { os: OsModelOptions { preload_overlap: false, ..ctx.opts.os }, ..ctx.opts },
    );
    push(
        "no channel packing",
        &ctx.cfg,
        SimOptions { os: OsModelOptions { channel_packing: false, ..ctx.opts.os }, ..ctx.opts },
    );
    push(
        "closed-form traffic (no tiling search)",
        &ctx.cfg,
        SimOptions { traffic: TrafficModel::ClosedForm, ..ctx.opts },
    );
    let no_db = AcceleratorConfig::builder()
        .double_buffering(false)
        .build()
        .expect("no-double-buffering config is valid");
    push("no double buffering", &no_db, ctx.opts);
    t
}

/// **A2** — batched inference: per-image cycles vs batch size. The
/// paper's batch-1 choice "gives less opportunity for data reuse";
/// this quantifies what embedded batch-1 operation costs per network.
pub fn batch_sweep(ctx: &Context) -> Table {
    let mut t = Table::new(
        "A2: per-image cycles vs batch size (hybrid architecture)",
        &["Network", "batch 1", "batch 4", "batch 16", "b1/b16"],
    );
    for net in [zoo::alexnet(), zoo::squeezenet_v1_0(), zoo::mobilenet_v1()] {
        let per_image = |b: u64| {
            simulate_network_batched(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts, b)
                .total_cycles() as f64
                / b as f64
        };
        let (b1, b4, b16) = (per_image(1), per_image(4), per_image(16));
        t.push_row(vec![
            net.name().to_owned(),
            format!("{b1:.0}"),
            format!("{b4:.0}"),
            format!("{b16:.0}"),
            format!("{:.2}x", b1 / b16),
        ]);
    }
    t
}

/// **A3** — multi-core scaling: inference speedup vs core count behind a
/// shared DRAM channel.
pub fn multicore_scaling(ctx: &Context) -> Table {
    let mut t = Table::new(
        "A3: multi-core scaling (shared DRAM channel)",
        &["Network", "1 core", "2 cores", "4 cores", "speedup @4"],
    );
    for net in [zoo::alexnet(), zoo::squeezenet_v1_0(), zoo::tiny_darknet()] {
        let run = |cores: usize| {
            let mc = MultiCoreConfig { core: ctx.cfg.clone(), cores };
            simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, ctx.opts).total_cycles()
        };
        let (c1, c2, c4) = (run(1), run(2), run(4));
        t.push_row(vec![
            net.name().to_owned(),
            c1.to_string(),
            c2.to_string(),
            c4.to_string(),
            format!("{:.2}x", c1 as f64 / c4 as f64),
        ]);
    }
    t
}

/// **A5** — roofline analysis: arithmetic intensity per network and per
/// layer class against the machine balance point (§4.2's "poor
/// Arithmetic Intensity" argument for avoiding depthwise separable
/// convolutions).
pub fn roofline_table(ctx: &Context) -> Table {
    let balance = machine_balance(&ctx.cfg);
    let mut t = Table::new(
        format!("A5: arithmetic intensity (machine balance {balance:.1} MACs/byte)"),
        &["Network", "MACs/byte", "Mem-bound MACs", "1x1", "FxF", "DW", "FC"],
    );
    let fmt_class = |r: &codesign_core::NetworkRoofline, c: LayerClass| {
        r.class_intensity(c).map_or("-".to_owned(), |v| format!("{v:.1}"))
    };
    for net in zoo::table_networks() {
        let r = roofline(&net, &ctx.cfg, ctx.opts);
        t.push_row(vec![
            net.name().to_owned(),
            format!("{:.1}", r.intensity()),
            pct(r.memory_bound_mac_fraction()),
            fmt_class(&r, LayerClass::Pointwise),
            fmt_class(&r, LayerClass::Spatial),
            fmt_class(&r, LayerClass::Depthwise),
            fmt_class(&r, LayerClass::FullyConnected),
        ]);
    }
    t
}

/// **L1** — the "longer version" per-layer evaluation the paper promises
/// ("a more detailed per-layer evaluation will be given for each DNN
/// model"): Figure-1-style tables for all six networks, concatenated
/// with a Network column.
pub fn per_layer_all(ctx: &Context) -> Table {
    let mut t = Table::new(
        "L1: per-layer evaluation for every network",
        &[
            "Network",
            "Layer",
            "Class",
            "WS cycles",
            "OS cycles",
            "Chosen",
            "Hybrid cycles",
            "Utilization",
        ],
    );
    for net in zoo::table_networks() {
        let schedule = NetworkSchedule::build_with(&ctx.sim, &net, &ctx.cfg, ctx.opts);
        for e in &schedule.entries {
            t.push_row(vec![
                net.name().to_owned(),
                e.name.clone(),
                e.class.to_string(),
                e.ws_cycles.to_string(),
                e.os_cycles.to_string(),
                e.chosen.map_or("SIMD".to_owned(), |d| d.tag().to_owned()),
                e.hybrid_cycles.to_string(),
                format!("{:.3}", e.utilization),
            ]);
        }
    }
    t
}

/// **L2** — energy breakdown across the memory hierarchy per network
/// (the accounting behind §4.1.3's energy discussion: AlexNet's FC
/// dominance, MobileNet's DRAM share).
pub fn energy_breakdown(ctx: &Context) -> Table {
    let mut t = Table::new(
        "L2: energy breakdown by hierarchy level (hybrid architecture)",
        &["Network", "Total (MMAC-eq)", "MAC", "RF", "Inter-PE", "Global buf", "DRAM"],
    );
    let m = ctx.energy;
    for net in zoo::table_networks() {
        let perf = ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
        let a = perf.total_accesses();
        let total = perf.total_energy(&m);
        let share = |x: f64| pct(x / total);
        t.push_row(vec![
            net.name().to_owned(),
            format!("{:.0}", total / 1e6),
            share(a.macs as f64 * m.mac),
            share(a.register_file as f64 * m.register_file),
            share(a.inter_pe as f64 * m.inter_pe),
            share(a.global_buffer as f64 * m.global_buffer),
            share(a.dram as f64 * m.dram),
        ]);
    }
    t
}

/// **L3** — static-schedule robustness: how many per-layer dataflow
/// choices made at the assumed 40 % sparsity flip when the deployed
/// sparsity differs.
pub fn schedule_robustness(ctx: &Context) -> Table {
    let mut t = Table::new(
        "L3: schedule robustness to the sparsity assumption (flipped layer choices)",
        &["Network", "z=0.0", "z=0.2", "z=0.4 (assumed)", "z=0.6", "z=0.8"],
    );
    let probes = [0.0, 0.2, 0.4, 0.6, 0.8];
    for net in zoo::table_networks() {
        let rows = codesign_core::schedule_sparsity_robustness_with(
            &ctx.sim,
            &net,
            &ctx.cfg,
            SparsityModel::paper_default(),
            &probes,
        );
        let mut cells = vec![net.name().to_owned()];
        cells.extend(rows.iter().map(|(_, flips)| flips.to_string()));
        t.push_row(cells);
    }
    t
}

/// **T3** — the full §3.2 dataflow taxonomy: fixed WS/OS/RS/NLR, the
/// paper's two-way hybrid, and the hypothetical four-way hybrid.
pub fn taxonomy(ctx: &Context) -> Table {
    let mut t = Table::new(
        "T3: full dataflow taxonomy (cycles; hybrid4 = per-layer min of all four)",
        &["Network", "WS", "OS", "RS", "NLR", "Hybrid2 (paper)", "Hybrid4", "Gain"],
    );
    for net in zoo::table_networks() {
        let c = compare_taxonomy(&net, &ctx.cfg, ctx.opts);
        t.push_row(vec![
            net.name().to_owned(),
            c.fixed_cycles(TaxonomyDataflow::Ws).to_string(),
            c.fixed_cycles(TaxonomyDataflow::Os).to_string(),
            c.fixed_cycles(TaxonomyDataflow::Rs).to_string(),
            c.fixed_cycles(TaxonomyDataflow::Nlr).to_string(),
            c.hybrid2.to_string(),
            c.hybrid4.to_string(),
            format!("{:.3}x", c.hybrid4_gain()),
        ]);
    }
    t
}

/// **L4** — cross-layer fusion study: how much DRAM traffic on-chip
/// forwarding could elide, as a function of global-buffer size. At the
/// paper's 128 KB almost nothing fuses; the table shows the buffer a
/// fusing design would need.
pub fn fusion_study(ctx: &Context) -> Table {
    let sizes = [128usize, 256, 512, 1024, 2048, 8192];
    let mut headers = vec!["Network".to_owned()];
    headers.extend(sizes.iter().map(|k| format!("{k} KiB")));
    let mut t = Table::new(
        "L4: DRAM traffic elided by cross-layer fusion vs buffer size",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for net in zoo::table_networks() {
        let mut cells = vec![net.name().to_owned()];
        for kib in sizes {
            let cfg = AcceleratorConfig::builder()
                .global_buffer_bytes(kib * 1024)
                .build()
                .expect("buffer sweep points are valid");
            let s = codesign_core::fusion_savings_with(&ctx.sim, &net, &cfg, ctx.opts, &ctx.energy);
            cells.push(pct(s.dram_fraction_saved()));
        }
        t.push_row(cells);
    }
    t
}

/// **A6** — discrete-event cross-check: the analytic
/// `max(compute, dram)` shortcut vs an explicit DMA/array pipeline with
/// tile prefetch and cross-layer weight streaming.
pub fn event_crosscheck(ctx: &Context) -> Table {
    let mut t = Table::new(
        "A6: analytic vs discrete-event pipeline",
        &["Network", "Analytic cycles", "Event cycles", "Event/Analytic", "Array stalls"],
    );
    for net in zoo::table_networks() {
        let analytic = ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
        let event = simulate_network_event(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
        t.push_row(vec![
            net.name().to_owned(),
            analytic.total_cycles().to_string(),
            event.total_cycles().to_string(),
            format!("{:.2}x", event.total_cycles() as f64 / analytic.total_cycles() as f64),
            pct(event.total_stalls() as f64 / event.total_cycles() as f64),
        ]);
    }
    t
}

/// **A4** — EIE-style weight compression on the DMA path: DRAM traffic
/// and cycle effect per network (§3.2 taxonomy: "data compression,
/// sparsity exploitation").
pub fn compression(ctx: &Context) -> Table {
    let mut t = Table::new(
        "A4: EIE-style weight compression (40% zeros, 16+4-bit encoding)",
        &[
            "Network",
            "DRAM MB dense",
            "DRAM MB compressed",
            "Speedup",
            "Energy dense",
            "Energy compressed",
        ],
    );
    let compressed_opts =
        SimOptions { weight_compression: Some(WeightCompression::eie_default()), ..ctx.opts };
    for net in zoo::table_networks() {
        let dense = ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
        let comp =
            ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, compressed_opts);
        let mb = |p: &codesign_sim::NetworkPerf| {
            p.layers.iter().map(|l| l.dram_bytes).sum::<u64>() as f64 / 1e6
        };
        t.push_row(vec![
            net.name().to_owned(),
            format!("{:.2}", mb(&dense)),
            format!("{:.2}", mb(&comp)),
            format!("{:.2}x", dense.total_cycles() as f64 / comp.total_cycles() as f64),
            format!("{:.0}", dense.total_energy(&ctx.energy) / 1e6),
            format!("{:.0}", comp.total_energy(&ctx.energy) / 1e6),
        ]);
    }
    t
}

/// **C1** — §2's embedded constraints: model footprints and real-time
/// headroom at the paper configuration.
pub fn constraints(ctx: &Context) -> Table {
    let mut t = Table::new(
        "C1: embedded constraints per model (paper hardware, batch 1)",
        &["Network", "MMACs", "Params (M)", "Weights (KB)", "Peak act (KB)", "ms/frame", "fps"],
    );
    // The six classification rows plus the §2 detection workload whose
    // feature maps "cannot be over sub-sampled".
    let mut nets = zoo::table_networks();
    nets.push(zoo::squeezedet_trunk());
    for net in nets {
        let perf = ctx.sim.simulate_network(&net, &ctx.cfg, DataflowPolicy::PerLayer, ctx.opts);
        let ms = ctx.cfg.cycles_to_ms(perf.total_cycles());
        t.push_row(vec![
            net.name().to_owned(),
            format!("{:.0}", net.total_macs() as f64 / 1e6),
            format!("{:.2}", net.total_params() as f64 / 1e6),
            format!("{}", codesign_dnn::weight_bytes(&net, 2) / 1024),
            format!("{}", codesign_dnn::peak_activation_bytes(&net, 2) / 1024),
            format!("{ms:.2}"),
            format!("{:.0}", 1000.0 / ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::paper_default()
    }

    #[test]
    fn table1_has_six_networks() {
        let t = table1(&ctx());
        assert_eq!(t.len(), 6);
        assert_eq!(t.cell(0, 0), Some("AlexNet"));
    }

    #[test]
    fn table2_rows_are_all_at_least_1x() {
        let t = table2(&ctx());
        assert_eq!(t.len(), 6);
        for i in 0..t.len() {
            for col in [1, 2] {
                let v: f64 =
                    t.cell(i, col).unwrap().trim_end_matches('x').parse().expect("ratio cell");
                assert!(v >= 1.0, "row {i} col {col}: {v}");
            }
        }
    }

    #[test]
    fn fig1_covers_every_layer() {
        let t = fig1(&ctx());
        assert_eq!(t.len(), zoo::squeezenet_v1_0().layers().len());
    }

    #[test]
    fn fig3_covers_five_variants() {
        let t = fig3(&ctx());
        let variants: std::collections::HashSet<&str> =
            (0..t.len()).map(|i| t.cell(i, 0).unwrap()).collect();
        assert_eq!(variants.len(), 5);
    }

    #[test]
    fn fig4_has_families_and_fronts() {
        let t = fig4(&ctx());
        assert!(t.len() >= 12, "got {} fig4 points", t.len());
        let any_pareto = (0..t.len()).any(|i| t.cell(i, 4) == Some("true"));
        assert!(any_pareto);
    }

    #[test]
    fn ranges_reports_three_classes() {
        let t = ranges(&ctx());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ablations_never_speed_things_up() {
        let t = ablations(&ctx());
        assert_eq!(t.len(), 6);
        for i in 1..t.len() {
            let v: f64 = t.cell(i, 2).unwrap().trim_end_matches('x').parse().unwrap();
            assert!(v >= 1.0, "ablation {i} should not be faster: {v}");
        }
    }

    #[test]
    fn batch_sweep_shows_alexnet_amortization() {
        let t = batch_sweep(&ctx());
        assert_eq!(t.len(), 3);
        let alex_gain: f64 = t.cell(0, 4).unwrap().trim_end_matches('x').parse().unwrap();
        let squeeze_gain: f64 = t.cell(1, 4).unwrap().trim_end_matches('x').parse().unwrap();
        assert!(alex_gain > squeeze_gain, "FC-heavy nets gain most from batching");
    }

    #[test]
    fn multicore_table_has_three_networks() {
        let t = multicore_scaling(&ctx());
        assert_eq!(t.len(), 3);
        for i in 0..t.len() {
            let s: f64 = t.cell(i, 4).unwrap().trim_end_matches('x').parse().unwrap();
            assert!((1.0..=4.0).contains(&s));
        }
    }

    #[test]
    fn roofline_table_shows_dw_below_fxf() {
        let t = roofline_table(&ctx());
        assert_eq!(t.len(), 6);
        // MobileNet row: DW intensity below 1x1 intensity.
        let dw: f64 = t.cell(1, 5).unwrap().parse().unwrap();
        let pw: f64 = t.cell(1, 3).unwrap().parse().unwrap();
        assert!(dw < pw);
        // AlexNet has no DW column value.
        assert_eq!(t.cell(0, 5), Some("-"));
    }

    #[test]
    fn per_layer_all_covers_every_layer_of_every_network() {
        let t = per_layer_all(&ctx());
        let expect: usize = zoo::table_networks().iter().map(|n| n.layers().len()).sum();
        assert_eq!(t.len(), expect);
    }

    #[test]
    fn energy_breakdown_shares_sum_to_one() {
        let t = energy_breakdown(&ctx());
        for i in 0..t.len() {
            let sum: f64 = (2..7)
                .map(|c| t.cell(i, c).unwrap().trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() <= 3.0, "row {i} sums to {sum}");
        }
        // DRAM is a major share everywhere on this hierarchy.
        let dram: f64 = t.cell(3, 6).unwrap().trim_end_matches('%').parse().unwrap();
        assert!(dram > 30.0);
    }

    #[test]
    fn schedule_robustness_is_zero_at_the_assumption() {
        let t = schedule_robustness(&ctx());
        for i in 0..t.len() {
            assert_eq!(t.cell(i, 3), Some("0"), "row {i} flips at the assumed sparsity");
        }
    }

    #[test]
    fn taxonomy_shows_zero_gain_on_the_design_target() {
        let t = taxonomy(&ctx());
        assert_eq!(t.len(), 6);
        // SqueezeNet v1.0 row: hybrid4 == hybrid2.
        assert_eq!(t.cell(3, 5), t.cell(3, 6));
    }

    #[test]
    fn fusion_study_savings_grow_with_buffer() {
        let t = fusion_study(&ctx());
        assert_eq!(t.len(), 6);
        for i in 0..t.len() {
            let first: f64 = t.cell(i, 1).unwrap().trim_end_matches('%').parse().unwrap();
            let last: f64 = t.cell(i, 6).unwrap().trim_end_matches('%').parse().unwrap();
            assert!(last >= first, "row {i}: {first} -> {last}");
        }
    }

    #[test]
    fn event_crosscheck_stays_in_band() {
        let t = event_crosscheck(&ctx());
        assert_eq!(t.len(), 6);
        for i in 0..t.len() {
            let r: f64 = t.cell(i, 3).unwrap().trim_end_matches('x').parse().unwrap();
            assert!((0.8..1.45).contains(&r), "row {i}: {r}");
        }
    }

    #[test]
    fn compression_cuts_dram_bytes_and_energy() {
        let t = compression(&ctx());
        assert_eq!(t.len(), 6);
        for i in 0..t.len() {
            let dense_mb: f64 = t.cell(i, 1).unwrap().parse().unwrap();
            let comp_mb: f64 = t.cell(i, 2).unwrap().parse().unwrap();
            assert!(comp_mb < dense_mb, "row {i}: {comp_mb} >= {dense_mb}");
            let speedup: f64 = t.cell(i, 3).unwrap().trim_end_matches('x').parse().unwrap();
            assert!(speedup >= 0.999, "row {i} slowed down: {speedup}");
            let dense_e: f64 = t.cell(i, 4).unwrap().parse().unwrap();
            let comp_e: f64 = t.cell(i, 5).unwrap().parse().unwrap();
            assert!(comp_e <= dense_e, "row {i} energy grew");
        }
    }

    #[test]
    fn constraints_table_reports_fps() {
        let t = constraints(&ctx());
        assert_eq!(t.len(), 7);
        for i in 0..t.len() {
            let fps: f64 = t.cell(i, 6).unwrap().parse().unwrap();
            assert!(fps > 1.0);
        }
        // The detection trunk's peak activations dwarf every classifier's.
        let det_act: f64 = t.cell(6, 4).unwrap().parse().unwrap();
        for i in 0..6 {
            let cls_act: f64 = t.cell(i, 4).unwrap().parse().unwrap();
            assert!(det_act > cls_act);
        }
    }

    #[test]
    fn codesign_and_headlines_render() {
        let c = codesign(&ctx());
        assert_eq!(c.len(), 5);
        let h = headlines(&ctx());
        assert_eq!(h.len(), 2);
        assert!(h.to_markdown().contains("AlexNet"));
    }

    #[test]
    fn dse_sweep_is_full_grid() {
        let t = dse_sweep(&ctx());
        assert_eq!(t.len(), 27);
    }

    #[test]
    fn shared_context_cache_accrues_hits_across_artifacts() {
        let c = ctx();
        table2(&c);
        let after_table2 = c.sim.stats();
        assert!(after_table2.hit_rate() > 0.5, "table2 replays hybrid runs: {after_table2}");
        dse_sweep(&c);
        let after_sweep = c.sim.stats();
        assert!(
            after_sweep.hits > after_table2.hits,
            "fire-module repeats inside each sweep point must hit: {after_sweep}"
        );
    }
}
