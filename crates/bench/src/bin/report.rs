//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [all|table1|table2|fig1|fig3|fig4|ranges|codesign|sweep|ablations]
//!        [--out DIR] [--jobs N] [--json[=PATH]] [--trace=PATH] [--metrics=PATH]
//! ```
//!
//! Markdown goes to stdout; CSV series are written to `--out` (default
//! `results/`). `--jobs` bounds the worker threads used to generate
//! experiments (`0`, the default, means one per core); results are
//! independent of the thread count. `--json` additionally writes the
//! schema-versioned machine-readable summary (`BENCH_report.json` under
//! `--out` unless a path is given); `--trace`/`--metrics` capture the
//! run through the observability layer as a Chrome trace / aggregated
//! metrics snapshot.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use codesign_bench::experiments::{
    ablations, batch_sweep, codesign, compression, constraints, dse_sweep, energy_breakdown,
    event_crosscheck, fig1, fig3, fig4, fusion_study, headlines, multicore_scaling, per_layer_all,
    ranges, roofline_table, schedule_robustness, table1, table2, taxonomy, Context,
};
use codesign_bench::{
    bar_chart, bars_svg, scatter_svg, Bar, BenchReport, ExperimentTiming, ScatterPoint, Table,
};
use codesign_sim::{atomic_write, par_map};
use codesign_trace::{chrome_trace, MetricsSnapshot, Tracer};

/// An experiment generator entry: name plus the table function.
type Experiment = (&'static str, fn(&Context) -> Table);

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut out_dir = PathBuf::from("results");
    let mut jobs = 0usize;
    // `Some(None)` means "--json with the default path under --out".
    let mut json: Option<Option<PathBuf>> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires a thread count (0 = one per core)");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = Some(None),
            a if a.starts_with("--json=") => {
                json = Some(Some(PathBuf::from(&a["--json=".len()..])));
            }
            a if a.starts_with("--trace=") => {
                trace_path = Some(PathBuf::from(&a["--trace=".len()..]));
            }
            a if a.starts_with("--metrics=") => {
                metrics_path = Some(PathBuf::from(&a["--metrics=".len()..]));
            }
            other => which = other.to_owned(),
        }
    }

    let tracer = if trace_path.is_some() || metrics_path.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let mut ctx = Context::with_jobs(jobs);
    if tracer.is_enabled() {
        // The clone shares the memo cache, so this only swaps the tracer in.
        ctx.sim = ctx.sim.clone().with_tracer(tracer.clone());
    }
    let all: Vec<Experiment> = vec![
        ("table1", table1),
        ("table2", table2),
        ("fig1", fig1),
        ("fig3", fig3),
        ("fig4", fig4),
        ("ranges", ranges),
        ("codesign", codesign),
        ("headlines", headlines),
        ("sweep", dse_sweep),
        ("ablations", ablations),
        ("batch", batch_sweep),
        ("compression", compression),
        ("roofline", roofline_table),
        ("event", event_crosscheck),
        ("perlayer", per_layer_all),
        ("energy", energy_breakdown),
        ("robustness", schedule_robustness),
        ("fusion", fusion_study),
        ("taxonomy", taxonomy),
        ("multicore", multicore_scaling),
        ("constraints", constraints),
    ];
    let selected: Vec<_> = all
        .iter()
        .filter(|(name, _)| {
            which == "all" || which == *name || (which == "codesign" && *name == "headlines")
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown experiment `{which}`; expected one of all, {}",
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    // Generate in parallel (each generator shares `ctx.sim`'s cache but
    // carries its own simulated-cycles odometer, so throughput can be
    // attributed per experiment), then print and write in the
    // deterministic selection order.
    let started = Instant::now();
    let generated: Vec<(Table, std::time::Duration, u64)> =
        par_map(jobs, &selected, |_, (_, gen)| {
            let local = Context { sim: ctx.sim.fork_counter(), ..ctx.clone() };
            let t0 = Instant::now();
            let table = gen(&local);
            (table, t0.elapsed(), local.sim.cycles_simulated())
        });
    let total_wall = started.elapsed();

    for ((name, _), (table, elapsed, _)) in selected.iter().zip(&generated) {
        eprintln!("[{name}] generated in {:.1} ms", elapsed.as_secs_f64() * 1e3);
        println!("{}", table.to_markdown());
        if *name == "fig1" {
            let bars: Vec<Bar> = (0..table.len())
                .map(|i| Bar {
                    label: table.cell(i, 0).expect("fig1 rows have labels").to_owned(),
                    value: table.cell(i, 5).and_then(|c| c.parse().ok()).unwrap_or_default(),
                    secondary: table.cell(i, 6).and_then(|c| c.parse().ok()),
                })
                .collect();
            println!("{}", bar_chart("Figure 1 (hybrid cycles, utilization)", &bars, 50));
            let svg_path = out_dir.join("fig1.svg");
            if let Err(e) = atomic_write(
                &svg_path,
                bars_svg("Figure 1: SqueezeNet v1.0 per-layer cycles (utilization)", &bars)
                    .as_bytes(),
            ) {
                eprintln!("cannot write {}: {e}", svg_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", svg_path.display());
        }
        if *name == "fig4" {
            let family = |label: &str| {
                if label.contains("SqNxt") {
                    0
                } else if label.contains("MobileNet") {
                    1
                } else if label.contains("SqueezeNet") {
                    2
                } else {
                    3
                }
            };
            let points: Vec<ScatterPoint> = (0..table.len())
                .filter_map(|i| {
                    Some(ScatterPoint {
                        label: table.cell(i, 0)?.to_owned(),
                        x: table.cell(i, 2)?.parse().ok()?,
                        y: table.cell(i, 1)?.parse().ok()?,
                        series: family(table.cell(i, 0)?),
                    })
                })
                .collect();
            let svg_path = out_dir.join("fig4.svg");
            if let Err(e) = atomic_write(
                &svg_path,
                scatter_svg(
                    "Figure 4: accuracy vs inference time (higher-left is better)",
                    "inference time (ms)",
                    "top-1 accuracy (%)",
                    &points,
                )
                .as_bytes(),
            ) {
                eprintln!("cannot write {}: {e}", svg_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", svg_path.display());
        }
        let path = out_dir.join(format!("{name}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }

    if let Some(dest) = json {
        let path = dest.unwrap_or_else(|| out_dir.join("BENCH_report.json"));
        let timings: Vec<ExperimentTiming> = selected
            .iter()
            .zip(&generated)
            .map(|(exp, (_, elapsed, sim_cycles))| ExperimentTiming {
                name: exp.0.to_owned(),
                wall_ms: elapsed.as_secs_f64() * 1e3,
                sim_cycles: *sim_cycles,
            })
            .collect();
        let report = BenchReport::collect(&ctx, timings, total_wall.as_secs_f64() * 1e3);
        if let Err(e) = atomic_write(&path, report.to_json().as_bytes()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        let fb = &report.functional_bench;
        eprintln!(
            "functional executor: {:.1} MMAC/s over {} network(s), {:.1}x vs naive ops, \
             bit-identical: {}",
            fb.gemm_macs_per_sec() / 1e6,
            fb.networks,
            fb.speedup_vs_naive(),
            fb.outputs_identical,
        );
    }

    if tracer.is_enabled() {
        let data = tracer.snapshot();
        if let Some(path) = &trace_path {
            if let Err(e) = atomic_write(path, chrome_trace(&data).as_bytes()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} ({} spans)", path.display(), data.span_count());
        }
        if let Some(path) = &metrics_path {
            if let Err(e) = atomic_write(path, MetricsSnapshot::of(&data).to_json().as_bytes()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }

    let stats = ctx.sim.stats();
    eprintln!(
        "generated {} artifact(s) in {:.1} ms; sim cache: {stats}",
        generated.len(),
        total_wall.as_secs_f64() * 1e3,
    );
    ExitCode::SUCCESS
}
