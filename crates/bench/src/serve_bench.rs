//! Serve-mode load bench: quantifies the two payoffs `codesign serve`
//! exists for — concurrent clients sharing one memoizing engine do less
//! simulation than the same clients running serially cold, and a cache
//! snapshot warm-starts a sweep to a fraction of its cold wall time.

use std::time::Instant;

use codesign_arch::EnergyModel;
use codesign_core::{sweep_full_with, SweepOutcome, SweepSpace};
use codesign_dnn::zoo;
use codesign_sim::{SimOptions, Simulator};

/// Measured serve-mode economics: concurrent-client cache sharing and
/// snapshot warm-start speedup, over the paper-default sweep space.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Concurrent clients simulated (each on a `fork_counter` of one
    /// shared engine, like server connection threads).
    pub clients: usize,
    /// Design points evaluated across all concurrent clients.
    pub points: usize,
    /// Wall time of the concurrent phase in milliseconds (best rep).
    pub wall_ms: f64,
    /// Cache misses (= simulations actually run) of the shared-cache
    /// concurrent phase.
    pub concurrent_misses: u64,
    /// Summed cache misses of the same client workloads run serially,
    /// each from a cold cache — the no-server reference.
    pub serial_misses: u64,
    /// Cold paper-default zoo sweep wall time in milliseconds (best rep).
    pub snapshot_cold_ms: f64,
    /// The same sweep warm-started from a snapshot (best rep).
    pub snapshot_warm_ms: f64,
    /// Size of the snapshot the cold sweep produced.
    pub snapshot_bytes: usize,
    /// Whether the warm-started sweep reproduced the cold outcomes
    /// bit-for-bit (it must; the bench records rather than asserts so a
    /// violation shows up in the committed report).
    pub outputs_identical: bool,
}

impl ServeBench {
    /// Concurrent clients in the sharing phase.
    pub const CLIENTS: usize = 4;
    /// Networks each client sweeps (overlapping slices of the zoo).
    pub const NETS_PER_CLIENT: usize = 3;
    /// Repetitions per timed phase; the reported wall time is the
    /// minimum, which filters scheduler noise out of the CI gate.
    pub const REPS: usize = 5;

    /// Runs the bench. Client `i` sweeps table networks `{i..i+3}`, so
    /// adjacent clients overlap in two of their three networks — the
    /// overlapping-query shape the server's shared cache deduplicates.
    pub fn measure(jobs: usize) -> Self {
        let space = SweepSpace::paper_default();
        let opts = SimOptions::paper_default();
        let energy = EnergyModel::default();
        let nets = zoo::table_networks();
        let slice = |i: usize| {
            (i..i + Self::NETS_PER_CLIENT).map(|j| &nets[j % nets.len()]).collect::<Vec<_>>()
        };

        // Reference: every client from a cold cache, serially. Misses
        // are deterministic, so one pass suffices.
        let mut serial_misses = 0u64;
        for i in 0..Self::CLIENTS {
            let cold = Simulator::new();
            for net in slice(i) {
                let _ = sweep_full_with(&cold, net, &space, opts, &energy, jobs);
            }
            serial_misses += cold.stats().misses;
        }

        // Concurrent phase: the same four workloads through one shared
        // engine, one thread per client, like server connections.
        let mut wall_ms = f64::INFINITY;
        let mut points = 0usize;
        let mut concurrent_misses = 0u64;
        for _ in 0..Self::REPS {
            let shared = Simulator::new();
            let started = Instant::now();
            let rep_points: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..Self::CLIENTS)
                    .map(|i| {
                        let worker = shared.fork_counter();
                        let nets = slice(i);
                        let space = &space;
                        let energy = &energy;
                        scope.spawn(move || {
                            let mut n = 0usize;
                            for net in nets {
                                if let Ok(out) =
                                    sweep_full_with(&worker, net, space, opts, energy, jobs)
                                {
                                    n += out.points.len();
                                }
                            }
                            n
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
            });
            wall_ms = wall_ms.min(started.elapsed().as_secs_f64() * 1e3);
            points = rep_points;
            concurrent_misses = shared.stats().misses;
        }

        // Snapshot phase: cold zoo sweep vs the same sweep warm-started
        // from the cold run's snapshot.
        let mut snapshot_cold_ms = f64::INFINITY;
        let mut snapshot = Vec::new();
        let mut cold_outcomes: Vec<SweepOutcome> = Vec::new();
        for _ in 0..Self::REPS {
            let sim = Simulator::new();
            let started = Instant::now();
            let outcomes = sweep_zoo(&sim, &nets, &space, opts, &energy, jobs);
            snapshot_cold_ms = snapshot_cold_ms.min(started.elapsed().as_secs_f64() * 1e3);
            snapshot = sim.cache_snapshot().unwrap_or_default();
            cold_outcomes = outcomes;
        }
        let mut snapshot_warm_ms = f64::INFINITY;
        let mut outputs_identical = true;
        for _ in 0..Self::REPS {
            let sim = Simulator::new();
            let loaded = sim.load_cache_snapshot(&snapshot).is_ok();
            let started = Instant::now();
            let outcomes = sweep_zoo(&sim, &nets, &space, opts, &energy, jobs);
            snapshot_warm_ms = snapshot_warm_ms.min(started.elapsed().as_secs_f64() * 1e3);
            outputs_identical &= loaded && outcomes == cold_outcomes;
        }

        Self {
            clients: Self::CLIENTS,
            points,
            wall_ms,
            concurrent_misses,
            serial_misses,
            snapshot_cold_ms,
            snapshot_warm_ms,
            snapshot_bytes: snapshot.len(),
            outputs_identical,
        }
    }

    /// Design points delivered per wall-second in the concurrent phase.
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / (self.wall_ms.max(f64::MIN_POSITIVE) / 1e3)
    }

    /// How much faster the warm-started sweep ran than the cold one.
    pub fn warm_speedup(&self) -> f64 {
        self.snapshot_cold_ms / self.snapshot_warm_ms.max(f64::MIN_POSITIVE)
    }

    /// Fraction of serial-cold simulations the shared cache eliminated.
    pub fn miss_reduction(&self) -> f64 {
        if self.serial_misses == 0 {
            return 0.0;
        }
        1.0 - self.concurrent_misses as f64 / self.serial_misses as f64
    }
}

fn sweep_zoo(
    sim: &Simulator,
    nets: &[codesign_dnn::Network],
    space: &SweepSpace,
    opts: SimOptions,
    energy: &EnergyModel,
    jobs: usize,
) -> Vec<SweepOutcome> {
    nets.iter()
        .filter_map(|net| sweep_full_with(sim, net, space, opts, energy, jobs).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_shows_the_serve_mode_payoffs() {
        let b = ServeBench::measure(2);
        assert_eq!(b.clients, ServeBench::CLIENTS);
        assert!(b.points > 0 && b.points_per_sec() > 0.0);
        assert!(
            b.concurrent_misses < b.serial_misses,
            "shared cache must do strictly fewer simulations: {} vs {}",
            b.concurrent_misses,
            b.serial_misses
        );
        assert!(b.miss_reduction() > 0.0);
        assert!(b.snapshot_bytes > 0, "the cold sweep leaves a non-empty snapshot");
        assert!(b.outputs_identical, "warm-started sweeps are bit-identical to cold");
        assert!(
            b.warm_speedup() >= 1.5,
            "snapshot warm-start must be at least 1.5x faster: cold {:.1} ms, warm {:.1} ms",
            b.snapshot_cold_ms,
            b.snapshot_warm_ms
        );
    }
}
