//! Functional-inference bench: times the GEMM-backed executor against
//! the naive reference convolutions over the whole table zoo, verifying
//! bit-equality along the way. The headline — functional MACs/sec and
//! the speedup over the naive ops — lands in `BENCH_report.json` so CI
//! can gate on executor throughput regressions.

use std::time::Instant;

use codesign_dnn::{zoo, Network};
use codesign_tensor::{run_network_reference, run_network_with, Tensor, WeightStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured functional-executor throughput over the table zoo: naive
/// reference ops vs the tiled-GEMM execution stack, same weights, same
/// input, outputs compared bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalBench {
    /// Worker threads the GEMM executor ran with (resolved; never 0).
    pub jobs: usize,
    /// Networks executed.
    pub networks: usize,
    /// Total multiply-accumulates across all networks (one inference
    /// each).
    pub macs: u64,
    /// Naive reference wall time in milliseconds (single rep — it is
    /// the slow side, and only anchors the speedup denominator).
    pub naive_wall_ms: f64,
    /// GEMM executor wall time in milliseconds (best of [`Self::REPS`]).
    pub gemm_wall_ms: f64,
    /// Whether every network's GEMM output matched the reference
    /// bit-for-bit (recorded rather than asserted so a violation shows
    /// up in the committed report, like `serve_bench.outputs_identical`).
    pub outputs_identical: bool,
}

impl FunctionalBench {
    /// Timed repetitions of the GEMM pass; the reported wall time is the
    /// minimum, which filters scheduler noise out of the CI gate.
    pub const REPS: usize = 3;

    /// Runs the bench over the table zoo. Release builds (the report
    /// binary, the CI gate) cover all six networks; debug builds — where
    /// the naive reference pass alone would take minutes — keep only the
    /// lightest network so `cargo test` stays affordable while still
    /// exercising the full measurement path.
    pub fn measure(jobs: usize) -> Self {
        let mut nets = zoo::table_networks();
        if cfg!(debug_assertions) {
            nets.sort_by_key(Network::total_macs);
            nets.truncate(1);
        }
        Self::measure_networks(&nets, jobs)
    }

    /// Runs the bench over an explicit network list (tests use a small
    /// subset so the naive pass stays affordable in debug builds).
    pub fn measure_networks(nets: &[Network], jobs: usize) -> Self {
        let cases: Vec<(Tensor, WeightStore, &Network)> = nets
            .iter()
            .map(|net| {
                // Weight range 8 at 40% sparsity and an 8-bit-ish input,
                // matching `codesign verify-functional`: wide enough to
                // exercise the wide-accumulator path, sparse enough to
                // hit the zero-skip paths.
                let mut rng = StdRng::seed_from_u64(2018);
                let weights = WeightStore::random(net, 8, 0.4, &mut rng);
                let image = Tensor::random(net.input(), 64, &mut rng);
                (image, weights, net)
            })
            .collect();

        let started = Instant::now();
        let references: Vec<_> = cases
            .iter()
            .map(|(image, weights, net)| {
                run_network_reference(net, image, weights).expect("zoo networks execute")
            })
            .collect();
        let naive_wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut gemm_wall_ms = f64::INFINITY;
        let mut outputs_identical = true;
        for _ in 0..Self::REPS {
            let started = Instant::now();
            let outputs: Vec<_> = cases
                .iter()
                .map(|(image, weights, net)| {
                    run_network_with(net, image, weights, jobs).expect("zoo networks execute")
                })
                .collect();
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            if wall_ms < gemm_wall_ms {
                gemm_wall_ms = wall_ms;
            }
            outputs_identical &= outputs
                .iter()
                .zip(&references)
                .all(|(got, want)| got.final_output() == want.final_output());
        }

        Self {
            jobs: codesign_sim::resolve_jobs(jobs),
            networks: nets.len(),
            macs: nets.iter().map(Network::total_macs).sum(),
            naive_wall_ms,
            gemm_wall_ms,
            outputs_identical,
        }
    }

    /// Naive-reference throughput in MACs per second.
    pub fn naive_macs_per_sec(&self) -> f64 {
        self.macs as f64 / (self.naive_wall_ms.max(f64::MIN_POSITIVE) / 1e3)
    }

    /// GEMM-executor throughput in MACs per second — the headline.
    pub fn gemm_macs_per_sec(&self) -> f64 {
        self.macs as f64 / (self.gemm_wall_ms.max(f64::MIN_POSITIVE) / 1e3)
    }

    /// Speedup of the GEMM execution stack over the naive reference.
    pub fn speedup_vs_naive(&self) -> f64 {
        self.naive_wall_ms / self.gemm_wall_ms.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_subset_and_verifies_equality() {
        // Debug-build affordable subset: the two lightest table networks.
        let nets = vec![zoo::squeezenet_v1_1(), zoo::tiny_darknet()];
        let b = FunctionalBench::measure_networks(&nets, 1);
        assert_eq!(b.networks, 2);
        assert_eq!(b.macs, nets.iter().map(Network::total_macs).sum::<u64>());
        assert!(b.outputs_identical, "GEMM must bit-match the reference");
        assert!(b.naive_wall_ms > 0.0 && b.gemm_wall_ms > 0.0);
        assert!(b.gemm_macs_per_sec() > 0.0 && b.speedup_vs_naive() > 0.0);
    }
}
