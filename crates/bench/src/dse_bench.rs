//! Streaming design-space-exploration bench: covers a ~10M-point sweep
//! space through the bounded-memory frontier pipeline with dominance
//! branch-and-bound enabled, and reports coverage throughput, the
//! pruned fraction, and the peak live frontier.
//!
//! The space is deliberately too large to materialize: the classic
//! `sweep_full_with` path would allocate one [`DesignPoint`] per grid
//! point (~gigabytes), while the streaming pipeline holds only the live
//! Pareto frontier plus one in-flight chunk. The long monotone buffer
//! axis is the shape branch-and-bound exists for — DRAM traffic is
//! non-increasing in buffer budget, so once the frontier has the
//! traffic plateau, whole buffer segments are provably dominated and
//! skipped without evaluation.

use std::time::Instant;

use codesign_arch::EnergyModel;
use codesign_core::{sweep_frontier_with, FrontierConfig, FrontierOutcome, SweepSpace};
use codesign_dnn::{Network, NetworkBuilder, Shape};
use codesign_sim::{resolve_jobs, CancelToken, SimOptions, Simulator};

/// Headline numbers of the streaming-DSE bench.
#[derive(Debug, Clone, PartialEq)]
pub struct DseBench {
    /// Worker threads (already resolved; never 0).
    pub jobs: usize,
    /// Grid points in the swept space.
    pub points: u64,
    /// Points actually evaluated by the simulator.
    pub evaluated: u64,
    /// Points skipped by branch-and-bound dominance pruning.
    pub pruned: u64,
    /// Points whose configuration could not be built.
    pub skipped: u64,
    /// Points whose evaluation failed (expected 0).
    pub failed: u64,
    /// Pareto-optimal designs in the final frontier.
    pub frontier: usize,
    /// Largest number of design points held live at any moment — the
    /// bench's bounded-memory claim, in points.
    pub peak_frontier: u64,
    /// Measured wall time in milliseconds (best of [`Self::REPS`]).
    pub wall_ms: f64,
}

impl DseBench {
    /// Cold-cache repetitions; the reported wall time is the minimum.
    pub const REPS: usize = 2;
    /// Streaming chunk size. Small on purpose: more branch-and-bound
    /// decision points, which is the code path being benchmarked.
    pub const CHUNK: usize = 32;
    /// Buffer-axis levels: 64 KiB up in 32-byte steps.
    pub const BUFFER_LEVELS: usize = 2_560_000;

    /// The benchmarked network: one convolution, so every grid point is
    /// a single tiling search and the bench isolates sweep-engine and
    /// pruning overhead rather than per-layer simulation cost.
    pub fn network() -> Network {
        let mut b = NetworkBuilder::new("dse-bench-conv", Shape::new(16, 32, 32));
        b.conv("c1", 32, 3, 1, 1);
        b.finish().expect("static bench network builds")
    }

    /// The benchmarked space: 2 array edges x 2 register-file depths x
    /// 2.56M buffer levels = 10.24M grid points.
    pub fn space() -> SweepSpace {
        SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: (0..Self::BUFFER_LEVELS).map(|i| 64 * 1024 + 32 * i).collect(),
        }
    }

    /// Runs the streaming frontier sweep over `space`, best wall time of
    /// [`Self::REPS`] cold-cache repetitions.
    pub fn measure_space(jobs: usize, network: &Network, space: &SweepSpace) -> Self {
        let opts = SimOptions::paper_default();
        let energy = EnergyModel::default();
        let config =
            FrontierConfig { jobs, chunk: Self::CHUNK, prune: true, ..FrontierConfig::default() };
        let mut best_wall_ms = f64::INFINITY;
        let mut outcome: Option<FrontierOutcome> = None;
        for _ in 0..Self::REPS {
            let sim = Simulator::new();
            let started = Instant::now();
            let out = sweep_frontier_with(
                &sim,
                network,
                space,
                opts,
                &energy,
                &config,
                &CancelToken::never(),
                |_| {},
            )
            .expect("bench space is non-empty and never cancelled");
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            if wall_ms < best_wall_ms {
                best_wall_ms = wall_ms;
            }
            // The outcome is deterministic across repetitions; keep the
            // last one.
            outcome = Some(out);
        }
        let out = outcome.expect("REPS >= 1");
        let c = out.counters;
        Self {
            jobs: resolve_jobs(jobs),
            points: c.total,
            evaluated: c.evaluated,
            pruned: c.pruned,
            skipped: c.skipped,
            failed: c.failed,
            frontier: out.frontier.len(),
            peak_frontier: c.peak_frontier,
            wall_ms: best_wall_ms,
        }
    }

    /// Runs the headline 10.24M-point bench.
    pub fn measure(jobs: usize) -> Self {
        Self::measure_space(jobs, &Self::network(), &Self::space())
    }

    /// Grid points covered (evaluated or proven dominated) per second.
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / (self.wall_ms.max(f64::MIN_POSITIVE) / 1e3)
    }

    /// Fraction of the grid skipped by branch-and-bound.
    pub fn pruned_fraction(&self) -> f64 {
        self.pruned as f64 / (self.points as f64).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_core::{pareto_designs, sweep_full_with};

    /// A thousand-point slice of the headline space: big enough that
    /// branch-and-bound finds the traffic plateau, small enough to
    /// cross-check against the materializing sweep.
    fn small_space() -> SweepSpace {
        SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8],
            buffer_bytes: (0..500).map(|i| 64 * 1024 + 4096 * i).collect(),
        }
    }

    #[test]
    fn bench_space_agrees_with_the_materializing_sweep() {
        let net = DseBench::network();
        let space = small_space();
        let b = DseBench::measure_space(2, &net, &space);
        assert_eq!(b.points as usize, space.len());
        assert_eq!(b.evaluated + b.pruned + b.skipped + b.failed, b.points);
        assert_eq!(b.failed, 0, "bench space evaluates cleanly");
        assert!(b.pruned_fraction() >= 0.2, "plateau must prune: {}", b.pruned_fraction());
        assert!(b.points_per_sec() > 0.0 && b.wall_ms > 0.0);
        assert!(b.peak_frontier >= b.frontier as u64);

        let batch = sweep_full_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::paper_default(),
            &EnergyModel::default(),
            0,
        )
        .expect("batch sweep runs");
        let expected = pareto_designs(&batch.points);
        assert_eq!(b.frontier, expected.len(), "pruning changed the frontier");
    }
}
