//! Terminal bar charts for the figure reproductions.
//!
//! Figures 1 and 3 are bar-plus-line plots in the paper; the report
//! renders the same series as unicode horizontal bars with an inline
//! utilization column, so the shape is visible without leaving the
//! terminal.

use std::fmt::Write as _;

/// One bar of a chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Row label (layer name).
    pub label: String,
    /// Bar magnitude (cycles).
    pub value: f64,
    /// Optional secondary 0..=1 series (utilization), shown numerically.
    pub secondary: Option<f64>,
}

/// Renders labeled horizontal bars scaled to `width` characters.
///
/// Returns an empty string for an empty series; non-finite or negative
/// values clamp to zero length.
pub fn bar_chart(title: &str, bars: &[Bar], width: usize) -> String {
    if bars.is_empty() {
        return String::new();
    }
    let max = bars.iter().map(|b| b.value).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for b in bars {
        let frac = (b.value / max).clamp(0.0, 1.0);
        let frac = if frac.is_finite() { frac } else { 0.0 };
        let filled = (frac * width as f64).round() as usize;
        let bar: String = "█".repeat(filled) + &"·".repeat(width - filled);
        match b.secondary {
            Some(u) => {
                let _ = writeln!(
                    out,
                    "{:<label_w$} {bar} {:>10.0} ({:>3.0}%)",
                    b.label,
                    b.value,
                    100.0 * u.clamp(0.0, 1.0)
                );
            }
            None => {
                let _ = writeln!(out, "{:<label_w$} {bar} {:>10.0}", b.label, b.value);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bars() -> Vec<Bar> {
        vec![
            Bar { label: "conv1".into(), value: 100.0, secondary: Some(0.5) },
            Bar { label: "fire2/squeeze1x1".into(), value: 50.0, secondary: Some(1.0) },
            Bar { label: "pool".into(), value: 0.0, secondary: None },
        ]
    }

    #[test]
    fn longest_bar_fills_the_width() {
        let s = bar_chart("t", &bars(), 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].matches('█').count(), 20);
        assert_eq!(lines[2].matches('█').count(), 10);
        assert_eq!(lines[3].matches('█').count(), 0);
    }

    #[test]
    fn secondary_series_is_percent() {
        let s = bar_chart("t", &bars(), 10);
        assert!(s.contains("( 50%)"));
        assert!(s.contains("(100%)"));
    }

    #[test]
    fn empty_series_renders_nothing() {
        assert_eq!(bar_chart("t", &[], 10), "");
    }

    #[test]
    fn labels_are_aligned() {
        let s = bar_chart("t", &bars(), 5);
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let starts: Vec<usize> =
            lines.iter().map(|l| l.find('█').or_else(|| l.find('·')).unwrap()).collect();
        assert!(starts.windows(2).all(|w| w[0] == w[1]), "{starts:?}");
    }
}
