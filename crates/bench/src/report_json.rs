//! The machine-readable bench report (`BENCH_report.json`).
//!
//! One schema-versioned JSON document summarizing a `report` run: wall
//! time (total and per experiment), simulator cache statistics, and the
//! per-network headline numbers (hybrid/WS/OS cycles, speedups, energy,
//! utilization). CI uploads this artifact so regressions are diffable
//! without re-running anything.

use codesign_core::ArchitectureComparison;
use codesign_dnn::zoo;
use codesign_sim::CacheStats;
use codesign_trace::json::{number, quote};

use crate::experiments::Context;

/// Schema identifier written into every report. Bump the suffix when the
/// document shape changes incompatibly.
pub const BENCH_REPORT_SCHEMA: &str = "codesign-bench-report/1";

/// Wall time of one experiment generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment name (`table1`, `fig4`, ...).
    pub name: String,
    /// Generation wall time in milliseconds.
    pub wall_ms: f64,
}

/// Headline numbers for one network on the paper-default hardware point.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkHeadline {
    /// Network name.
    pub name: String,
    /// Inference cycles on the hybrid (Squeezelerator) architecture.
    pub hybrid_cycles: u64,
    /// Inference cycles on the fixed-WS reference.
    pub ws_cycles: u64,
    /// Inference cycles on the fixed-OS reference.
    pub os_cycles: u64,
    /// Hybrid speedup over the fixed-OS reference.
    pub speedup_vs_os: f64,
    /// Hybrid speedup over the fixed-WS reference.
    pub speedup_vs_ws: f64,
    /// Hybrid energy reduction vs the fixed-OS reference (fraction).
    pub energy_reduction_vs_os: f64,
    /// Hybrid energy reduction vs the fixed-WS reference (fraction).
    pub energy_reduction_vs_ws: f64,
    /// Hybrid energy in MAC-normalized units.
    pub energy: f64,
    /// Average PE utilization of the hybrid run.
    pub utilization: f64,
    /// Hybrid inference time in milliseconds at the configured clock.
    pub time_ms: f64,
}

/// The full report document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Total report wall time in milliseconds.
    pub wall_ms: f64,
    /// Per-experiment wall times, in generation order.
    pub experiments: Vec<ExperimentTiming>,
    /// Simulator cache counters at the end of the run.
    pub cache: CacheStats,
    /// Per-network headlines for the paper's table networks.
    pub networks: Vec<NetworkHeadline>,
}

impl BenchReport {
    /// Assembles a report: takes the run's timings and re-derives the
    /// per-network headlines through `ctx.sim` (with a warm cache these
    /// evaluations are answered almost entirely from memo entries).
    pub fn collect(ctx: &Context, experiments: Vec<ExperimentTiming>, wall_ms: f64) -> Self {
        let networks = zoo::table_networks()
            .iter()
            .map(|net| {
                let c = ArchitectureComparison::evaluate_with(
                    &ctx.sim, net, &ctx.cfg, ctx.opts, ctx.energy,
                );
                let hybrid_cycles = c.hybrid.total_cycles();
                NetworkHeadline {
                    name: net.name().to_owned(),
                    hybrid_cycles,
                    ws_cycles: c.ws.total_cycles(),
                    os_cycles: c.os.total_cycles(),
                    speedup_vs_os: c.speedup_vs_os(),
                    speedup_vs_ws: c.speedup_vs_ws(),
                    energy_reduction_vs_os: c.energy_reduction_vs_os(),
                    energy_reduction_vs_ws: c.energy_reduction_vs_ws(),
                    energy: c.hybrid.total_energy(c.energy_model()),
                    utilization: c.hybrid.average_utilization(ctx.cfg.pe_count()),
                    time_ms: ctx.cfg.cycles_to_ms(hybrid_cycles),
                }
            })
            .collect();
        Self { wall_ms, experiments, cache: ctx.sim.stats(), networks }
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let experiments: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                format!("    {{\"name\":{},\"wall_ms\":{}}}", quote(&e.name), number(e.wall_ms))
            })
            .collect();
        let networks: Vec<String> = self
            .networks
            .iter()
            .map(|n| {
                format!(
                    "    {{\"name\":{},\"hybrid_cycles\":{},\"ws_cycles\":{},\"os_cycles\":{},\
                     \"speedup_vs_os\":{},\"speedup_vs_ws\":{},\
                     \"energy_reduction_vs_os\":{},\"energy_reduction_vs_ws\":{},\
                     \"energy\":{},\"utilization\":{},\"time_ms\":{}}}",
                    quote(&n.name),
                    n.hybrid_cycles,
                    n.ws_cycles,
                    n.os_cycles,
                    number(n.speedup_vs_os),
                    number(n.speedup_vs_ws),
                    number(n.energy_reduction_vs_os),
                    number(n.energy_reduction_vs_ws),
                    number(n.energy),
                    number(n.utilization),
                    number(n.time_ms),
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": {},\n  \"wall_ms\": {},\n  \"experiments\": [\n{}\n  ],\n  \
             \"cache\": {{\"hits\":{},\"misses\":{},\"entries\":{},\"hit_rate\":{}}},\n  \
             \"networks\": [\n{}\n  ]\n}}\n",
            quote(BENCH_REPORT_SCHEMA),
            number(self.wall_ms),
            experiments.join(",\n"),
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            number(self.cache.hit_rate()),
            networks.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_is_balanced(json: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                match (escaped, c) {
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn collect_produces_sane_headlines() {
        let ctx = Context::paper_default();
        let timings = vec![ExperimentTiming { name: "table2".to_owned(), wall_ms: 12.5 }];
        let report = BenchReport::collect(&ctx, timings, 40.0);
        assert_eq!(report.networks.len(), zoo::table_networks().len());
        for n in &report.networks {
            assert!(n.hybrid_cycles > 0, "{}", n.name);
            assert!(n.speedup_vs_os >= 1.0 && n.speedup_vs_ws >= 1.0, "{}", n.name);
            assert!(n.time_ms > 0.0 && n.utilization > 0.0, "{}", n.name);
        }
        assert!(report.cache.lookups() > 0, "headlines route through ctx.sim");
    }

    #[test]
    fn json_has_schema_and_balances() {
        let ctx = Context::paper_default();
        let report = BenchReport::collect(
            &ctx,
            vec![ExperimentTiming { name: "t\"1".to_owned(), wall_ms: 1.0 }],
            2.0,
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"codesign-bench-report/1\""));
        assert!(json.contains("\"hybrid_cycles\""));
        assert!(json.contains("\"hit_rate\""));
        json_is_balanced(&json);
    }
}
