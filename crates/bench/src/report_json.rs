//! The machine-readable bench report (`BENCH_report.json`).
//!
//! One schema-versioned JSON document summarizing a `report` run: wall
//! time (total and per experiment), simulator cache statistics, and the
//! per-network headline numbers (hybrid/WS/OS cycles, speedups, energy,
//! utilization). CI uploads this artifact so regressions are diffable
//! without re-running anything.

use std::time::Instant;

use codesign_arch::EnergyModel;
use codesign_core::{sweep_full_with, ArchitectureComparison, SweepSpace};
use codesign_dnn::zoo;
use codesign_sim::{resolve_jobs, CacheStats, SimOptions, Simulator};
use codesign_trace::json::{number, quote};

use crate::dse_bench::DseBench;
use crate::experiments::Context;
use crate::functional_bench::FunctionalBench;
use crate::serve_bench::ServeBench;

/// Schema identifier written into every report. Bump the suffix when the
/// document shape changes incompatibly. `/2` added the `contended` cache
/// counter and the `sweep_bench` section; `/3` added per-experiment
/// `sim_cycles` and `sim_cycles_per_sec` throughput; `/4` added the
/// `serve_bench` section (concurrent-client cache sharing and snapshot
/// warm-start speedup); `/5` added the `functional_bench` section
/// (GEMM-backed inference throughput vs the naive reference ops); `/6`
/// added the `dse_bench` section (streaming-frontier coverage of a
/// 10.24M-point space with branch-and-bound pruning).
pub const BENCH_REPORT_SCHEMA: &str = "codesign-bench-report/6";

/// Pre-overhaul reference wall time for [`SweepBench`]: the
/// paper-default sweep over the six table networks took ~206 ms at
/// `--jobs 8` before the sweep-engine hot-path overhaul (sharded split
/// cache, per-network layer dedup, persistent worker pool, pruned tiling
/// search). Pinned so `speedup_vs_baseline` in committed reports tracks
/// the same denominator across machines of similar class.
pub const SWEEP_BASELINE_WALL_MS: f64 = 206.0;

/// Wall time and simulation throughput of one experiment generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment name (`table1`, `fig4`, ...).
    pub name: String,
    /// Generation wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles delivered through the shared engine handle while
    /// generating this experiment (cache hits included — a memoized
    /// answer still delivers its cycles). Zero for experiments that do
    /// not route layer simulation through the engine (static tables, the
    /// standalone event/batch/multicore models).
    pub sim_cycles: u64,
}

impl ExperimentTiming {
    /// Simulated-cycles-per-wall-second throughput of this experiment.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / (self.wall_ms.max(f64::MIN_POSITIVE) / 1e3)
    }
}

/// Headline numbers for one network on the paper-default hardware point.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkHeadline {
    /// Network name.
    pub name: String,
    /// Inference cycles on the hybrid (Squeezelerator) architecture.
    pub hybrid_cycles: u64,
    /// Inference cycles on the fixed-WS reference.
    pub ws_cycles: u64,
    /// Inference cycles on the fixed-OS reference.
    pub os_cycles: u64,
    /// Hybrid speedup over the fixed-OS reference.
    pub speedup_vs_os: f64,
    /// Hybrid speedup over the fixed-WS reference.
    pub speedup_vs_ws: f64,
    /// Hybrid energy reduction vs the fixed-OS reference (fraction).
    pub energy_reduction_vs_os: f64,
    /// Hybrid energy reduction vs the fixed-WS reference (fraction).
    pub energy_reduction_vs_ws: f64,
    /// Hybrid energy in MAC-normalized units.
    pub energy: f64,
    /// Average PE utilization of the hybrid run.
    pub utilization: f64,
    /// Hybrid inference time in milliseconds at the configured clock.
    pub time_ms: f64,
}

/// Timed paper-default design-space sweep over the full table zoo,
/// measured on a fresh (cold-cache) simulator so the number reflects the
/// sweep engine's real hot path rather than a pre-warmed memo.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBench {
    /// Worker threads the sweep ran with (already resolved; never 0).
    pub jobs: usize,
    /// Networks swept.
    pub networks: usize,
    /// Design points evaluated across all networks.
    pub points: usize,
    /// Points that failed (expected 0).
    pub failures: usize,
    /// Measured wall time in milliseconds.
    pub wall_ms: f64,
    /// Pinned pre-overhaul reference ([`SWEEP_BASELINE_WALL_MS`]).
    pub baseline_wall_ms: f64,
    /// Cache counters of the dedicated sweep simulator.
    pub cache: CacheStats,
}

impl SweepBench {
    /// Cold-cache repetitions per measurement; the reported wall time is
    /// the minimum, which filters scheduler noise out of the CI gate.
    pub const REPS: usize = 3;

    /// Runs and times the paper-default sweep (array × RF × buffer grid)
    /// over every table network, best of [`Self::REPS`] runs, each on a
    /// fresh simulator so no repetition inherits a warm cache.
    pub fn measure(jobs: usize) -> Self {
        let space = SweepSpace::paper_default();
        let opts = SimOptions::paper_default();
        let energy = EnergyModel::default();
        let nets = zoo::table_networks();
        let mut best_wall_ms = f64::INFINITY;
        let mut points = 0usize;
        let mut failures = 0usize;
        let mut cache = CacheStats::default();
        for _ in 0..Self::REPS {
            let sim = Simulator::new();
            let mut rep_points = 0usize;
            let mut rep_failures = 0usize;
            let started = Instant::now();
            for net in &nets {
                if let Ok(out) = sweep_full_with(&sim, net, &space, opts, &energy, jobs) {
                    rep_points += out.points.len();
                    rep_failures += out.failures.len();
                }
            }
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            if wall_ms < best_wall_ms {
                best_wall_ms = wall_ms;
            }
            // Counts and cache shape are deterministic across reps; keep
            // the last repetition's.
            points = rep_points;
            failures = rep_failures;
            cache = sim.stats();
        }
        Self {
            jobs: resolve_jobs(jobs),
            networks: nets.len(),
            points,
            failures,
            wall_ms: best_wall_ms,
            baseline_wall_ms: SWEEP_BASELINE_WALL_MS,
            cache,
        }
    }

    /// Speedup of the measured sweep over the pinned pre-overhaul
    /// reference wall time.
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.baseline_wall_ms / self.wall_ms.max(f64::MIN_POSITIVE)
    }
}

/// The full report document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Total report wall time in milliseconds.
    pub wall_ms: f64,
    /// Per-experiment wall times, in generation order.
    pub experiments: Vec<ExperimentTiming>,
    /// Simulator cache counters at the end of the run.
    pub cache: CacheStats,
    /// Timed cold-cache sweep over the full zoo.
    pub sweep_bench: SweepBench,
    /// Serve-mode load bench: concurrent-client cache sharing and
    /// snapshot warm-start speedup.
    pub serve_bench: ServeBench,
    /// Functional-executor bench: GEMM inference throughput over the
    /// zoo vs the naive reference ops, with bit-equality verified.
    pub functional_bench: FunctionalBench,
    /// Streaming-DSE bench: bounded-memory frontier coverage of a
    /// 10.24M-point space with branch-and-bound pruning.
    pub dse_bench: DseBench,
    /// Per-network headlines for the paper's table networks.
    pub networks: Vec<NetworkHeadline>,
}

fn cache_json(c: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"contended\":{},\"hit_rate\":{}}}",
        c.hits,
        c.misses,
        c.entries,
        c.contended,
        number(c.hit_rate()),
    )
}

impl BenchReport {
    /// Assembles a report: takes the run's timings and re-derives the
    /// per-network headlines through `ctx.sim` (with a warm cache these
    /// evaluations are answered almost entirely from memo entries).
    pub fn collect(ctx: &Context, experiments: Vec<ExperimentTiming>, wall_ms: f64) -> Self {
        let networks = zoo::table_networks()
            .iter()
            .map(|net| {
                let c = ArchitectureComparison::evaluate_with(
                    &ctx.sim, net, &ctx.cfg, ctx.opts, ctx.energy,
                );
                let hybrid_cycles = c.hybrid.total_cycles();
                NetworkHeadline {
                    name: net.name().to_owned(),
                    hybrid_cycles,
                    ws_cycles: c.ws.total_cycles(),
                    os_cycles: c.os.total_cycles(),
                    speedup_vs_os: c.speedup_vs_os(),
                    speedup_vs_ws: c.speedup_vs_ws(),
                    energy_reduction_vs_os: c.energy_reduction_vs_os(),
                    energy_reduction_vs_ws: c.energy_reduction_vs_ws(),
                    energy: c.hybrid.total_energy(c.energy_model()),
                    utilization: c.hybrid.average_utilization(ctx.cfg.pe_count()),
                    time_ms: ctx.cfg.cycles_to_ms(hybrid_cycles),
                }
            })
            .collect();
        Self {
            wall_ms,
            experiments,
            cache: ctx.sim.stats(),
            sweep_bench: SweepBench::measure(ctx.jobs),
            serve_bench: ServeBench::measure(ctx.jobs),
            functional_bench: FunctionalBench::measure(ctx.jobs),
            dse_bench: DseBench::measure(ctx.jobs),
            networks,
        }
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let experiments: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                format!(
                    "    {{\"name\":{},\"wall_ms\":{},\"sim_cycles\":{},\
                     \"sim_cycles_per_sec\":{}}}",
                    quote(&e.name),
                    number(e.wall_ms),
                    e.sim_cycles,
                    number(e.sim_cycles_per_sec()),
                )
            })
            .collect();
        let networks: Vec<String> = self
            .networks
            .iter()
            .map(|n| {
                format!(
                    "    {{\"name\":{},\"hybrid_cycles\":{},\"ws_cycles\":{},\"os_cycles\":{},\
                     \"speedup_vs_os\":{},\"speedup_vs_ws\":{},\
                     \"energy_reduction_vs_os\":{},\"energy_reduction_vs_ws\":{},\
                     \"energy\":{},\"utilization\":{},\"time_ms\":{}}}",
                    quote(&n.name),
                    n.hybrid_cycles,
                    n.ws_cycles,
                    n.os_cycles,
                    number(n.speedup_vs_os),
                    number(n.speedup_vs_ws),
                    number(n.energy_reduction_vs_os),
                    number(n.energy_reduction_vs_ws),
                    number(n.energy),
                    number(n.utilization),
                    number(n.time_ms),
                )
            })
            .collect();
        let sb = &self.sweep_bench;
        let sweep_bench = format!(
            "{{\"jobs\":{},\"networks\":{},\"points\":{},\"failures\":{},\
             \"wall_ms\":{},\"baseline_wall_ms\":{},\"speedup_vs_baseline\":{},\
             \"cache\":{}}}",
            sb.jobs,
            sb.networks,
            sb.points,
            sb.failures,
            number(sb.wall_ms),
            number(sb.baseline_wall_ms),
            number(sb.speedup_vs_baseline()),
            cache_json(&sb.cache),
        );
        let vb = &self.serve_bench;
        let serve_bench = format!(
            "{{\"clients\":{},\"points\":{},\"wall_ms\":{},\"points_per_sec\":{},\
             \"concurrent_misses\":{},\"serial_misses\":{},\"miss_reduction\":{},\
             \"snapshot_cold_ms\":{},\"snapshot_warm_ms\":{},\"warm_speedup\":{},\
             \"snapshot_bytes\":{},\"outputs_identical\":{}}}",
            vb.clients,
            vb.points,
            number(vb.wall_ms),
            number(vb.points_per_sec()),
            vb.concurrent_misses,
            vb.serial_misses,
            number(vb.miss_reduction()),
            number(vb.snapshot_cold_ms),
            number(vb.snapshot_warm_ms),
            number(vb.warm_speedup()),
            vb.snapshot_bytes,
            vb.outputs_identical,
        );
        let fb = &self.functional_bench;
        let functional_bench = format!(
            "{{\"jobs\":{},\"networks\":{},\"macs\":{},\
             \"naive_wall_ms\":{},\"gemm_wall_ms\":{},\
             \"naive_macs_per_sec\":{},\"gemm_macs_per_sec\":{},\
             \"speedup_vs_naive\":{},\"outputs_identical\":{}}}",
            fb.jobs,
            fb.networks,
            fb.macs,
            number(fb.naive_wall_ms),
            number(fb.gemm_wall_ms),
            number(fb.naive_macs_per_sec()),
            number(fb.gemm_macs_per_sec()),
            number(fb.speedup_vs_naive()),
            fb.outputs_identical,
        );
        let db = &self.dse_bench;
        let dse_bench = format!(
            "{{\"jobs\":{},\"points\":{},\"evaluated\":{},\"pruned\":{},\
             \"skipped\":{},\"failed\":{},\"frontier\":{},\"peak_frontier\":{},\
             \"wall_ms\":{},\"points_per_sec\":{},\"pruned_fraction\":{}}}",
            db.jobs,
            db.points,
            db.evaluated,
            db.pruned,
            db.skipped,
            db.failed,
            db.frontier,
            db.peak_frontier,
            number(db.wall_ms),
            number(db.points_per_sec()),
            number(db.pruned_fraction()),
        );
        format!(
            "{{\n  \"schema\": {},\n  \"wall_ms\": {},\n  \"experiments\": [\n{}\n  ],\n  \
             \"cache\": {},\n  \"sweep_bench\": {},\n  \"serve_bench\": {},\n  \
             \"functional_bench\": {},\n  \"dse_bench\": {},\n  \"networks\": [\n{}\n  ]\n}}\n",
            quote(BENCH_REPORT_SCHEMA),
            number(self.wall_ms),
            experiments.join(",\n"),
            cache_json(&self.cache),
            sweep_bench,
            serve_bench,
            functional_bench,
            dse_bench,
            networks.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_is_balanced(json: &str) {
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                match (escaped, c) {
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn collect_produces_sane_headlines() {
        let ctx = Context::paper_default();
        let timings =
            vec![ExperimentTiming { name: "table2".to_owned(), wall_ms: 12.5, sim_cycles: 1_000 }];
        let report = BenchReport::collect(&ctx, timings, 40.0);
        assert_eq!(report.networks.len(), zoo::table_networks().len());
        for n in &report.networks {
            assert!(n.hybrid_cycles > 0, "{}", n.name);
            assert!(n.speedup_vs_os >= 1.0 && n.speedup_vs_ws >= 1.0, "{}", n.name);
            assert!(n.time_ms > 0.0 && n.utilization > 0.0, "{}", n.name);
        }
        assert!(report.cache.lookups() > 0, "headlines route through ctx.sim");
        let sb = &report.sweep_bench;
        assert_eq!(sb.networks, zoo::table_networks().len());
        assert!(sb.points > 0 && sb.failures == 0, "sweep bench evaluates the grid");
        assert!(sb.jobs >= 1, "jobs are resolved");
        assert!(sb.wall_ms > 0.0 && sb.speedup_vs_baseline() > 0.0);
        assert!(sb.cache.hits > 0, "the sweep shares cache entries across points");
        let vb = &report.serve_bench;
        assert!(vb.concurrent_misses < vb.serial_misses, "shared cache dedups overlap");
        assert!(vb.outputs_identical, "warm sweeps match cold bit-for-bit");
        let fb = &report.functional_bench;
        assert!(fb.networks >= 1 && fb.macs > 0);
        assert!(fb.outputs_identical, "GEMM executor matches the reference");
        assert!(fb.gemm_macs_per_sec() > 0.0 && fb.speedup_vs_naive() > 0.0);
        let db = &report.dse_bench;
        assert_eq!(db.evaluated + db.pruned + db.skipped + db.failed, db.points);
        assert!(db.failed == 0, "DSE bench space evaluates cleanly");
        assert!(db.pruned_fraction() >= 0.2, "branch-and-bound prunes the plateau");
        assert!(db.points_per_sec() > 0.0 && db.peak_frontier >= db.frontier as u64);
    }

    #[test]
    fn json_has_schema_and_balances() {
        let ctx = Context::paper_default();
        let report = BenchReport::collect(
            &ctx,
            vec![ExperimentTiming { name: "t\"1".to_owned(), wall_ms: 1.0, sim_cycles: 42 }],
            2.0,
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"codesign-bench-report/6\""));
        assert!(json.contains("\"sim_cycles\":42"));
        assert!(json.contains("\"sim_cycles_per_sec\":42000"));
        assert!(json.contains("\"hybrid_cycles\""));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"contended\""));
        assert!(json.contains("\"sweep_bench\""));
        assert!(json.contains("\"baseline_wall_ms\""));
        assert!(json.contains("\"serve_bench\""));
        for field in [
            "\"points_per_sec\":",
            "\"warm_speedup\":",
            "\"miss_reduction\":",
            "\"snapshot_bytes\":",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
        assert!(json.contains("\"functional_bench\""));
        for field in [
            "\"gemm_macs_per_sec\":",
            "\"naive_macs_per_sec\":",
            "\"speedup_vs_naive\":",
            "\"outputs_identical\":",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
        assert!(json.contains("\"dse_bench\""));
        for field in ["\"points_per_sec\":", "\"pruned_fraction\":", "\"peak_frontier\":"] {
            assert!(json.contains(field), "missing {field}");
        }
        json_is_balanced(&json);
    }
}
