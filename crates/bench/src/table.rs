//! Tiny table model with markdown and CSV rendering — the output format
//! of every experiment report.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use codesign_sim::atomic_write;

/// A rectangular table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| self.rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(0))
            .collect();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
            let _ = writeln!(out, "| {} |", joined.join(" | "));
        };
        line(&self.headers, &mut out);
        let seps: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", seps.join("-|-"));
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Renders CSV (RFC-4180-ish: cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path` atomically (temp + fsync +
    /// rename): a crash mid-write never leaves a truncated artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        atomic_write(path.as_ref(), self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["with,comma".into(), "2".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = t().to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| name"));
        assert_eq!(md.lines().filter(|l| l.starts_with('|')).count(), 4);
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = t().to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn accessors() {
        let t = t();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 1), Some("1"));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.title(), "Demo");
    }
}
