//! Microbenchmarks of the simulator itself: per-network analytic
//! simulation, per-layer dataflow comparison, the cycle-stepped machine,
//! and the functional dataflow executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use codesign_arch::{AcceleratorConfig, DataflowPolicy};
use codesign_dnn::{zoo, ConvSpec, Kernel, Shape};
use codesign_sim::{
    compare_dataflows, conv2d_os, conv2d_ws, cycle, optimize_tiling, simulate_network,
    simulate_network_event, ConvWork, OsModelOptions, Program, SimOptions, WorkKind,
};
use codesign_tensor::{Filters, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_network_simulation(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let mut g = c.benchmark_group("simulate_network");
    g.sample_size(20);
    for net in zoo::table_networks() {
        g.bench_with_input(BenchmarkId::from_parameter(net.name()), &net, |b, net| {
            b.iter(|| simulate_network(net, &cfg, DataflowPolicy::PerLayer, opts));
        });
    }
    g.finish();
}

fn bench_layer_comparison(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_0();
    let layer = net.layer("fire5/expand3x3").expect("layer exists");
    c.bench_function("compare_dataflows/fire5_expand3x3", |b| {
        b.iter(|| compare_dataflows(layer, &cfg, opts));
    });
}

fn bench_cycle_machine(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let work = ConvWork {
        kind: WorkKind::Dense,
        groups: 1,
        in_channels: 64,
        out_channels: 256,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        in_h: 15,
        in_w: 15,
        out_h: 13,
        out_w: 13,
    };
    let mut g = c.benchmark_group("cycle_machine");
    g.bench_function("trace_ws", |b| b.iter(|| cycle::trace_ws(&work, &cfg)));
    g.bench_function("trace_os", |b| {
        b.iter(|| cycle::trace_os(&work, &cfg, OsModelOptions::paper_default()))
    });
    g.finish();
}

fn bench_functional_executors(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::random(Shape::new(16, 32, 32), 64, &mut rng);
    let filters = Filters::random(32, 16, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 32,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: 1,
    };
    let mut g = c.benchmark_group("functional_conv_16x32x32_k32");
    g.sample_size(20);
    g.bench_function("reference", |b| {
        b.iter(|| codesign_tensor::ops::conv2d(&input, &filters, &spec).expect("valid conv"));
    });
    g.bench_function("ws_schedule", |b| {
        b.iter(|| conv2d_ws(&input, &filters, &spec, &cfg).expect("valid conv"));
    });
    g.bench_function("os_schedule", |b| {
        b.iter(|| conv2d_os(&input, &filters, &spec, &cfg).expect("valid conv"));
    });
    g.finish();
}

fn bench_tiling_search(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let work = ConvWork {
        kind: WorkKind::Dense,
        groups: 1,
        in_channels: 128,
        out_channels: 128,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        in_h: 58,
        in_w: 58,
        out_h: 56,
        out_w: 56,
    };
    c.bench_function("optimize_tiling/128x56x56_k128", |b| {
        b.iter(|| optimize_tiling(&work, &cfg));
    });
}

fn bench_program_compile(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let mut g = c.benchmark_group("program");
    g.sample_size(20);
    g.bench_function("compile/squeezenet_v1_1", |b| {
        b.iter(|| Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts));
    });
    let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
    g.bench_function("replay/squeezenet_v1_1", |b| b.iter(|| program.estimate(&cfg)));
    g.finish();
}

fn bench_event_pipeline(c: &mut Criterion) {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let mut g = c.benchmark_group("event_pipeline");
    g.sample_size(20);
    g.bench_function("squeezenet_v1_1", |b| {
        b.iter(|| simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_network_simulation,
    bench_layer_comparison,
    bench_cycle_machine,
    bench_functional_executors,
    bench_tiling_search,
    bench_program_compile,
    bench_event_pipeline
);
criterion_main!(benches);
