//! Microbenchmarks of the simulator itself: per-network analytic
//! simulation (cached and uncached), per-layer dataflow comparison, the
//! cycle-stepped machine, and the functional dataflow executors.

use codesign_arch::{AcceleratorConfig, DataflowPolicy};
use codesign_bench::stopwatch::Stopwatch;
use codesign_dnn::{zoo, ConvSpec, Kernel, Shape};
use codesign_sim::{
    compare_dataflows, conv2d_os, conv2d_ws, cycle, optimize_tiling, simulate_network,
    simulate_network_event, ConvWork, OsModelOptions, Program, SimOptions, Simulator, WorkKind,
};
use codesign_tensor::{Filters, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_network_simulation() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let g = Stopwatch::group("simulate_network", 20);
    for net in zoo::table_networks() {
        g.bench(net.name(), || simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts));
    }
    let g = Stopwatch::group("simulate_network_warm_cache", 20);
    for net in zoo::table_networks() {
        let sim = Simulator::new();
        sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts); // warm
        g.bench(net.name(), || sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts));
    }
}

fn bench_layer_comparison() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_0();
    let layer = net.layer("fire5/expand3x3").expect("layer exists");
    let g = Stopwatch::group("compare_dataflows", 20);
    g.bench("fire5_expand3x3", || compare_dataflows(layer, &cfg, opts));
}

fn bench_cycle_machine() {
    let cfg = AcceleratorConfig::paper_default();
    let work = ConvWork {
        kind: WorkKind::Dense,
        groups: 1,
        in_channels: 64,
        out_channels: 256,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        in_h: 15,
        in_w: 15,
        out_h: 13,
        out_w: 13,
    };
    let g = Stopwatch::group("cycle_machine", 10);
    g.bench("trace_ws", || cycle::trace_ws(&work, &cfg));
    g.bench("trace_os", || cycle::trace_os(&work, &cfg, OsModelOptions::paper_default()));
}

fn bench_functional_executors() {
    let cfg = AcceleratorConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::random(Shape::new(16, 32, 32), 64, &mut rng);
    let filters = Filters::random(32, 16, 3, 3, 16, 0.4, &mut rng);
    let spec = ConvSpec {
        out_channels: 32,
        kernel: Kernel::square(3),
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        groups: 1,
    };
    let g = Stopwatch::group("functional_conv_16x32x32_k32", 20);
    g.bench("reference", || {
        codesign_tensor::ops::conv2d(&input, &filters, &spec).expect("valid conv")
    });
    g.bench("ws_schedule", || conv2d_ws(&input, &filters, &spec, &cfg).expect("valid conv"));
    g.bench("os_schedule", || conv2d_os(&input, &filters, &spec, &cfg).expect("valid conv"));
}

fn bench_tiling_search() {
    let cfg = AcceleratorConfig::paper_default();
    let work = ConvWork {
        kind: WorkKind::Dense,
        groups: 1,
        in_channels: 128,
        out_channels: 128,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        in_h: 58,
        in_w: 58,
        out_h: 56,
        out_w: 56,
    };
    let g = Stopwatch::group("optimize_tiling", 10);
    g.bench("128x56x56_k128", || optimize_tiling(&work, &cfg).unwrap());
}

fn bench_program_compile() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let g = Stopwatch::group("program", 20);
    g.bench("compile/squeezenet_v1_1", || {
        Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts)
    });
    let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
    g.bench("replay/squeezenet_v1_1", || program.estimate(&cfg));
}

/// Acceptance gate for the observability layer: a `Simulator` carrying a
/// disabled tracer must stay within noise (budget: 2%) of one built
/// without, and the enabled-tracer cost is printed alongside for scale.
fn bench_tracing_overhead() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let g = Stopwatch::group("tracing_overhead", 20);
    let plain = Simulator::uncached();
    let base =
        g.bench("baseline", || plain.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts));
    let disabled = Simulator::uncached().with_tracer(codesign_trace::Tracer::disabled());
    let off = g.bench("tracer_disabled", || {
        disabled.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)
    });
    let enabled = Simulator::uncached().with_tracer(codesign_trace::Tracer::enabled());
    g.bench("tracer_enabled", || {
        enabled.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)
    });
    let overhead = off.median.as_secs_f64() / base.median.as_secs_f64() - 1.0;
    println!("tracing_overhead/disabled_vs_baseline  {:+.2}%  (budget 2%)", overhead * 100.0);
}

fn bench_event_pipeline() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let g = Stopwatch::group("event_pipeline", 20);
    g.bench("squeezenet_v1_1", || {
        simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts)
    });
}

fn main() {
    bench_network_simulation();
    bench_layer_comparison();
    bench_cycle_machine();
    bench_functional_executors();
    bench_tiling_search();
    bench_program_compile();
    bench_tracing_overhead();
    bench_event_pipeline();
}
