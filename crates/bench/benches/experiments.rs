//! One Criterion bench per paper artifact: measures how long each
//! table/figure takes to regenerate (the whole workload generator +
//! simulator + baselines pipeline behind it).

use criterion::{criterion_group, criterion_main, Criterion};

use codesign_bench::experiments::{
    ablations, codesign, dse_sweep, fig1, fig3, fig4, headlines, ranges, table1, table2, Context,
};

fn bench_artifacts(c: &mut Criterion) {
    let ctx = Context::paper_default();
    let mut g = c.benchmark_group("artifacts");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| table1(&ctx)));
    g.bench_function("table2", |b| b.iter(|| table2(&ctx)));
    g.bench_function("fig1", |b| b.iter(|| fig1(&ctx)));
    g.bench_function("fig3", |b| b.iter(|| fig3(&ctx)));
    g.bench_function("fig4", |b| b.iter(|| fig4(&ctx)));
    g.bench_function("ranges_s1", |b| b.iter(|| ranges(&ctx)));
    g.bench_function("codesign_s3", |b| b.iter(|| codesign(&ctx)));
    g.bench_function("headlines_s3", |b| b.iter(|| headlines(&ctx)));
    g.bench_function("dse_sweep_a1a", |b| b.iter(|| dse_sweep(&ctx)));
    g.bench_function("ablations_a1b", |b| b.iter(|| ablations(&ctx)));
    g.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
