//! One bench per paper artifact: measures how long each table/figure
//! takes to regenerate (the whole workload generator + simulator +
//! baselines pipeline behind it).

use codesign_bench::experiments::{
    ablations, codesign, dse_sweep, fig1, fig3, fig4, headlines, ranges, table1, table2, Context,
};
use codesign_bench::stopwatch::Stopwatch;

fn main() {
    let ctx = Context::paper_default();
    let g = Stopwatch::group("artifacts", 10);
    g.bench("table1", || table1(&ctx));
    g.bench("table2", || table2(&ctx));
    g.bench("fig1", || fig1(&ctx));
    g.bench("fig3", || fig3(&ctx));
    g.bench("fig4", || fig4(&ctx));
    g.bench("ranges_s1", || ranges(&ctx));
    g.bench("codesign_s3", || codesign(&ctx));
    g.bench("headlines_s3", || headlines(&ctx));
    g.bench("dse_sweep_a1a", || dse_sweep(&ctx));
    g.bench("ablations_a1b", || ablations(&ctx));
    let stats = ctx.sim.stats();
    println!(
        "sim cache: {} hits / {} lookups ({:.1}% hit rate, {} entries)",
        stats.hits,
        stats.lookups(),
        100.0 * stats.hit_rate(),
        stats.entries
    );
}
