//! End-to-end tests of `codesign serve`: a real server process on an
//! ephemeral port, real TCP clients, real line-delimited JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// A running server process, killed on drop so a failing test can't
/// leak a listener.
struct Server {
    child: Child,
    port: u16,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra: &[&str]) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_codesign"))
        .args(["serve", "--port", "0", "--jobs", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let port = read_port_line(stdout);
    Server { child, port }
}

/// Parses the startup handshake: `codesign serve listening on 127.0.0.1:PORT`.
fn read_port_line(stdout: ChildStdout) -> u16 {
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("port line");
    let addr = line.trim().rsplit(' ').next().expect("address in port line");
    addr.rsplit(':').next().expect("port in address").parse().expect("numeric port")
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("client connects");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout set");
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Client { writer: stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request sends");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        assert!(!line.is_empty(), "server closed mid-response");
        line.trim().to_owned()
    }

    /// Reads lines until the `done`/`error` terminator, inclusive.
    fn recv_until_done(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let line = self.recv();
            let done = line.contains("\"event\":\"done\"") || line.contains("\"event\":\"error\"");
            lines.push(line);
            if done {
                return lines;
            }
        }
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        self.recv_until_done()
    }
}

/// Polls `stats` until `pred` holds (or panics after ~10s): the dedup
/// tests need to know the leader's sweep is registered in-flight before
/// sending the duplicate.
fn wait_for_stats(port: u16, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = Client::connect(port);
        let stats = probe.request(r#"{"id":"probe","cmd":"stats"}"#).pop().expect("stats line");
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for stats; last: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Extracts a `"field":123` integer from a response line.
fn field_u64(line: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = line.find(&key).unwrap_or_else(|| panic!("no {field} in {line}"));
    line[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {field} in {line}"))
}

#[test]
fn ping_stats_and_errors_speak_the_protocol() {
    let server = spawn_server(&[]);
    let mut c = Client::connect(server.port);

    let pong = c.request(r#"{"id":41,"cmd":"ping"}"#);
    assert_eq!(pong, vec![r#"{"id":41,"event":"done","cmd":"ping","ok":true}"#.to_owned()]);

    // Unknown command and bad JSON are usage errors, not disconnects.
    let err = c.request(r#"{"id":"x","cmd":"explode"}"#).pop().unwrap();
    assert!(err.contains(r#""event":"error""#) && err.contains(r#""code":"usage""#), "{err}");
    let err = c.request("this is not json").pop().unwrap();
    assert!(err.contains(r#""code":"usage""#), "{err}");
    let err = c.request(r#"{"id":7,"cmd":"simulate","network":"no-such-net"}"#).pop().unwrap();
    assert!(err.contains(r#""code":"usage""#) && err.contains("no-such-net"), "{err}");

    let stats = c.request(r#"{"id":"s","cmd":"stats"}"#).pop().unwrap();
    assert!(field_u64(&stats, "requests") >= 4, "{stats}");
    assert_eq!(field_u64(&stats, "deduped"), 0, "{stats}");
    assert!(stats.contains("\"cache\":"), "{stats}");
}

#[test]
fn sweep_streams_frontier_deltas_then_a_summary() {
    let server = spawn_server(&[]);
    let mut c = Client::connect(server.port);
    let lines = c.request(
        r#"{"id":"sw","cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8,16],"buffers_kib":[64]}"#,
    );
    let done = lines.last().unwrap();
    assert!(done.contains(r#""event":"done","cmd":"sweep""#), "{done}");
    assert_eq!(field_u64(done, "points"), 4, "{done}");
    let frontier: Vec<&String> =
        lines.iter().filter(|l| l.contains(r#""event":"frontier""#)).collect();
    assert_eq!(frontier.len() as u64, field_u64(done, "frontier"), "{done}");
    assert!(!frontier.is_empty(), "a non-empty sweep has a non-empty frontier");
    for line in &frontier {
        for field in ["\"design\":", "\"cycles\":", "\"energy\":", "\"index\":"] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    assert!(done.contains("\"best\":\""), "{done}");

    // simulate and codesign answer over the same warmed cache.
    let sim = c.request(
        r#"{"id":1,"cmd":"simulate","network":"tiny-darknet","array":8,"rf":8,"buffer_kib":64}"#,
    );
    assert_eq!(sim.len(), 1);
    assert!(field_u64(&sim[0], "cycles") > 0, "{}", sim[0]);
    let cd = c.request(r#"{"id":2,"cmd":"codesign","network":"tiny-darknet"}"#).pop().unwrap();
    assert!(cd.contains("\"hybrid_cycles\":") && cd.contains("\"speedup_vs_ws\":"), "{cd}");
}

#[test]
fn identical_inflight_sweeps_are_deduplicated() {
    let server = spawn_server(&[]);
    let sweep = r#"{"id":"ID","cmd":"sweep","network":"squeezenet-v1.1","arrays":[8,16],"rfs":[8,16],"buffers_kib":[64,128]}"#;

    let mut leader = Client::connect(server.port);
    leader.send(&sweep.replace("ID", "a"));
    // Deterministic overlap: wait until the leader's sweep is registered
    // in-flight before sending the identical request.
    wait_for_stats(server.port, |s| field_u64(s, "inflight") >= 1);
    let mut follower = Client::connect(server.port);
    follower.send(&sweep.replace("ID", "b"));

    let leader_lines = leader.recv_until_done();
    let follower_lines = follower.recv_until_done();
    // Both streams carry the same bodies, each under its own id.
    let strip = |lines: &[String], id: &str| -> Vec<String> {
        let prefix = format!("{{\"id\":\"{id}\",");
        lines
            .iter()
            .map(|l| {
                assert!(l.starts_with(&prefix), "{l}");
                l[prefix.len()..].to_owned()
            })
            .collect()
    };
    assert_eq!(strip(&leader_lines, "a"), strip(&follower_lines, "b"));

    let stats = wait_for_stats(server.port, |s| field_u64(s, "inflight") == 0);
    assert_eq!(field_u64(&stats, "deduped"), 1, "{stats}");
    assert!(stats.contains(r#""serve.dedup":1"#), "dedup counter fired: {stats}");
}

#[test]
fn concurrent_distinct_clients_share_the_cache() {
    let server = spawn_server(&[]);
    // Two clients, overlapping-but-distinct spaces: no request-level
    // dedup possible, but the shared cache still removes repeated work.
    let mut a = Client::connect(server.port);
    let mut b = Client::connect(server.port);
    a.send(r#"{"id":"a","cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8],"buffers_kib":[64]}"#);
    b.send(r#"{"id":"b","cmd":"sweep","network":"tiny-darknet","arrays":[16,32],"rfs":[8],"buffers_kib":[64]}"#);
    let da = a.recv_until_done().pop().unwrap();
    let db = b.recv_until_done().pop().unwrap();
    assert_eq!(field_u64(&da, "points"), 2, "{da}");
    assert_eq!(field_u64(&db, "points"), 2, "{db}");

    let stats = wait_for_stats(server.port, |s| field_u64(s, "inflight") == 0);
    assert_eq!(field_u64(&stats, "deduped"), 0, "distinct requests never dedup: {stats}");
    assert!(field_u64(&stats, "hits") > 0, "overlap resolves from the shared cache: {stats}");
}

#[test]
fn shutdown_saves_a_snapshot_a_new_server_warm_starts_from() {
    let dir = std::env::temp_dir().join(format!("codesign-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("cache.snap");
    let snap_str = snap.to_str().expect("utf-8 temp path");

    {
        let mut server = spawn_server(&["--cache-save", snap_str]);
        let mut c = Client::connect(server.port);
        let done =
            c.request(r#"{"id":1,"cmd":"simulate","network":"tiny-darknet"}"#).pop().unwrap();
        let cold_cycles = field_u64(&done, "cycles");
        assert!(cold_cycles > 0);
        let bye = c.request(r#"{"id":2,"cmd":"shutdown"}"#).pop().unwrap();
        assert!(bye.contains(r#""cmd":"shutdown""#), "{bye}");
        drop(c); // disconnect so the server can finish joining
        let status = server.child.wait().expect("server exits");
        assert!(status.success(), "clean shutdown exits 0");
        assert!(snap.exists(), "snapshot written on shutdown");
    }

    // Warm boot: the same request must be answered entirely from the
    // loaded snapshot — hits, no misses.
    let server = spawn_server(&["--cache-load", snap_str]);
    let mut c = Client::connect(server.port);
    let warm = c.request(r#"{"id":3,"cmd":"simulate","network":"tiny-darknet"}"#).pop().unwrap();
    assert!(field_u64(&warm, "cycles") > 0);
    let stats = c.request(r#"{"id":4,"cmd":"stats"}"#).pop().unwrap();
    assert_eq!(field_u64(&stats, "misses"), 0, "warm start answers from snapshot: {stats}");
    assert!(field_u64(&stats, "hits") > 0, "{stats}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_shot_cache_flags_round_trip_and_reject_damage() {
    let dir = std::env::temp_dir().join(format!("codesign-oneshot-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("sweep.snap");
    let snap_str = snap.to_str().expect("utf-8 temp path");
    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_codesign")).args(args).output().expect("binary runs")
    };

    let cold = run(&["sweep", "tiny-darknet", "--cache-save", snap_str]);
    assert!(cold.status.success(), "{}", String::from_utf8_lossy(&cold.stderr));
    assert!(snap.exists());
    let warm = run(&["sweep", "tiny-darknet", "--cache-load", snap_str]);
    assert!(warm.status.success());
    // Byte-identical stdout: the cache changes wall-time, never results.
    assert_eq!(cold.stdout, warm.stdout, "warm sweep output must match cold");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(warm_err.contains("warm-started"), "{warm_err}");

    // A corrupted snapshot is a rejected input: exit 2, named error.
    let mut bytes = std::fs::read(&snap).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("snapshot writable");
    let bad = run(&["sweep", "tiny-darknet", "--cache-load", snap_str]);
    assert_eq!(bad.status.code(), Some(2), "{}", String::from_utf8_lossy(&bad.stderr));

    // A missing snapshot is a usage error: exit 1.
    let missing = run(&["sweep", "tiny-darknet", "--cache-load", "/no/such/file.snap"]);
    assert_eq!(missing.status.code(), Some(1));
    // Cache flags on a non-caching command are usage errors too.
    let misuse = run(&["simulate", "tiny-darknet", "--cache-load", snap_str]);
    assert_eq!(misuse.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_answer_typed_errors_and_the_server_keeps_serving() {
    let server = spawn_server(&[]);
    let mut c = Client::connect(server.port);

    // A pre-expired per-request deadline: typed error, prefix statement,
    // zero deltas delivered (the empty prefix).
    let lines = c.request(
        r#"{"id":"dl","cmd":"sweep","network":"tiny-darknet","deadline_ms":0,"arrays":[8,16],"rfs":[8],"buffers_kib":[64]}"#,
    );
    assert_eq!(lines.len(), 1, "no deltas before a zero deadline: {lines:?}");
    let err = &lines[0];
    assert!(err.contains(r#""event":"error""#) && err.contains(r#""code":"deadline""#), "{err}");
    assert!(err.contains("prefix of the full run"), "{err}");

    // The very same sweep without a deadline completes on the same
    // connection — a deadline costs one request, not the server.
    let done = c
        .request(
            r#"{"id":"full","cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8],"buffers_kib":[64]}"#,
        )
        .pop()
        .unwrap();
    assert_eq!(field_u64(&done, "points"), 2, "{done}");
    let stats = c.request(r#"{"id":"s","cmd":"stats"}"#).pop().unwrap();
    assert!(stats.contains(r#""serve.deadline":1"#), "{stats}");
}

#[test]
fn server_wide_deadline_caps_every_request() {
    let server = spawn_server(&["--deadline-ms", "0"]);
    let mut c = Client::connect(server.port);
    // The client asks for a generous budget; the server's cap wins.
    let err = c
        .request(r#"{"id":1,"cmd":"codesign","network":"tiny-darknet","deadline_ms":60000}"#)
        .pop()
        .unwrap();
    assert!(err.contains(r#""code":"deadline""#), "{err}");
    // Non-compute commands are never subject to the deadline.
    let pong = c.request(r#"{"id":2,"cmd":"ping"}"#).pop().unwrap();
    assert!(pong.contains(r#""ok":true"#), "{pong}");
}

#[test]
fn oversized_lines_cost_one_typed_error_each() {
    let server = spawn_server(&["--max-line-bytes", "256"]);
    let mut c = Client::connect(server.port);
    writeln!(c.writer, "{}", "x".repeat(64 * 1024)).expect("oversized line sends");
    let err = c.recv();
    assert!(err.contains(r#""code":"usage""#) && err.contains("max-line-bytes"), "{err}");
    // Exactly one error for the whole oversized line, then normal
    // service resumes on the same connection.
    let pong = c.request(r#"{"id":1,"cmd":"ping"}"#).pop().unwrap();
    assert!(pong.contains(r#""ok":true"#), "{pong}");
    let stats = c.request(r#"{"id":2,"cmd":"stats"}"#).pop().unwrap();
    assert!(stats.contains(r#""serve.overflow":1"#), "{stats}");
}

#[test]
fn connections_beyond_the_slot_limit_are_fast_rejected() {
    let server = spawn_server(&["--max-connections", "1"]);
    let mut a = Client::connect(server.port);
    let pong = a.request(r#"{"id":1,"cmd":"ping"}"#).pop().unwrap();
    assert!(pong.contains(r#""ok":true"#), "{pong}");

    // The second connection gets one overloaded line, then EOF.
    let mut b = Client::connect(server.port);
    let reject = b.recv();
    assert!(
        reject.contains(r#""code":"overloaded""#) && reject.contains(r#""id":null"#),
        "{reject}"
    );
    let mut rest = String::new();
    assert_eq!(b.reader.read_line(&mut rest).expect("EOF readable"), 0, "rejected conn closed");

    // The admitted client is unaffected.
    let pong = a.request(r#"{"id":2,"cmd":"ping"}"#).pop().unwrap();
    assert!(pong.contains(r#""ok":true"#), "{pong}");
}

#[test]
fn request_panics_are_isolated_and_answered() {
    let server = spawn_server(&[]);
    let mut c = Client::connect(server.port);
    let err = c.request(r#"{"id":"boom","cmd":"__panic__"}"#).pop().unwrap();
    assert!(err.contains(r#""code":"internal""#) && err.contains("still serving"), "{err}");
    let pong = c.request(r#"{"id":1,"cmd":"ping"}"#).pop().unwrap();
    assert!(pong.contains(r#""ok":true"#), "{pong}");
    let stats = c.request(r#"{"id":2,"cmd":"stats"}"#).pop().unwrap();
    assert!(stats.contains(r#""serve.internal":1"#), "{stats}");
}

#[test]
fn kill_nine_after_autosave_never_loses_the_warm_start() {
    // The crash-safety acceptance path end to end, with a real SIGKILL:
    // autosaved generations survive the kill, a torn newest generation
    // is refused, and the replacement server warm-starts from the
    // survivor.
    let dir = std::env::temp_dir().join(format!("codesign-kill9-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("cache.snap");
    let snap_str = snap.to_str().expect("utf-8 temp path");

    let mut server = spawn_server(&["--cache-save", snap_str, "--autosave-every", "1"]);
    let mut c = Client::connect(server.port);
    for (i, array) in [8u64, 16, 32].iter().enumerate() {
        let done = c
            .request(&format!(
                r#"{{"id":{i},"cmd":"simulate","network":"tiny-darknet","array":{array}}}"#
            ))
            .pop()
            .unwrap();
        assert!(field_u64(&done, "cycles") > 0, "{done}");
    }
    // Autosaves land after the response is written; wait for all three.
    wait_for_stats(server.port, |s| s.contains(r#""serve.autosave":3"#));
    server.child.kill().expect("SIGKILL lands");
    server.child.wait().expect("killed server reaped");
    assert!(!snap.exists(), "no clean-shutdown snapshot after kill -9");

    // Tear the newest generation mid-write, as a crash during the next
    // autosave would.
    let mut gens: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("dir readable")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.to_string_lossy().contains(".gen-"))
        .collect();
    gens.sort();
    assert!(!gens.is_empty(), "autosave left generation files");
    let newest = gens.last().unwrap();
    let bytes = std::fs::read(newest).expect("newest gen readable");
    std::fs::write(newest, &bytes[..bytes.len() / 2]).expect("newest gen torn");

    // Recovery: torn newest refused (counted), older generation loaded,
    // warm workload answered without a single miss.
    let server = spawn_server(&["--cache-load", snap_str]);
    let mut c = Client::connect(server.port);
    let stats = c.request(r#"{"id":"s","cmd":"stats"}"#).pop().unwrap();
    assert!(field_u64(&stats, "entries") > 0, "warm start survived: {stats}");
    assert!(stats.contains(r#""serve.snapshot.refused":1"#), "{stats}");
    let warm = c
        .request(r#"{"id":"w","cmd":"simulate","network":"tiny-darknet","array":8}"#)
        .pop()
        .unwrap();
    assert!(field_u64(&warm, "cycles") > 0, "{warm}");
    let stats = c.request(r#"{"id":"s2","cmd":"stats"}"#).pop().unwrap();
    assert_eq!(field_u64(&stats, "misses"), 0, "recovered cache answers warm: {stats}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reader_interleaves_requests_without_blocking() {
    // One connection, two requests back to back before reading: the
    // server must answer both in order (the protocol is pipelined).
    let server = spawn_server(&[]);
    let mut c = Client::connect(server.port);
    c.send(r#"{"id":1,"cmd":"ping"}"#);
    c.send(r#"{"id":2,"cmd":"ping"}"#);
    assert!(c.recv().starts_with(r#"{"id":1,"#));
    assert!(c.recv().starts_with(r#"{"id":2,"#));
    // Half a line then the rest: framing survives write fragmentation.
    write!(c.writer, r#"{{"id":3,"cmd":"#).expect("half line");
    c.writer.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(50));
    writeln!(c.writer, r#""ping"}}"#).expect("rest of line");
    assert!(c.recv().starts_with(r#"{"id":3,"#));
}
