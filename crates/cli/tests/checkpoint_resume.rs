//! Crash-safety end-to-end test: SIGKILL a checkpointing streaming
//! sweep mid-run, tear the newest checkpoint generation on disk, then
//! `--resume` and demand the final report be byte-identical to an
//! uninterrupted run. This is the whole point of generation-based
//! checkpointing — no fsync dance survives `kill -9` plus a torn file
//! unless older generations stay intact and loadable.

#![cfg(unix)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const MODEL: &str = "network ckpt-net 8x16x16\nconv c1 16 3 s1 p1\n";

fn codesign() -> Command {
    Command::new(env!("CARGO_BIN_EXE_codesign"))
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Fresh scratch directory for one test, with the model file inside.
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("codesign-ckpt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir creates");
    let model = dir.join("ckpt-net.net");
    fs::write(&model, MODEL).expect("model file writes");
    (dir, model)
}

/// A buffer axis long enough that the child reliably writes several
/// checkpoint generations before finishing.
fn buffer_axis(n: usize) -> String {
    (0..n).map(|i| (64 + i).to_string()).collect::<Vec<_>>().join(",")
}

fn generation_files(base: &Path) -> Vec<PathBuf> {
    let dir = base.parent().expect("base has a parent");
    let prefix = format!("{}.gen-", base.file_name().expect("base file name").to_string_lossy());
    let mut found: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint dir lists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(&prefix)))
        .collect();
    found.sort();
    found
}

#[test]
fn killed_sweep_resumes_bit_identically_even_with_a_torn_newest_generation() {
    let (dir, model) = scratch("resume");
    let model = model.to_str().expect("utf-8 path");
    let base = dir.join("sweep.ck");
    let axis = buffer_axis(4000);
    let sweep_args =
        ["sweep", model, "--jobs", "2", "--arrays", "8", "--rfs", "8", "--buffers-kib", &axis];

    // Reference: the same sweep, uninterrupted, no checkpointing.
    let reference = codesign().args(sweep_args).output().expect("reference sweep runs");
    assert!(reference.status.success(), "reference failed: {}", stderr(&reference));
    let expected = stdout(&reference);
    assert!(expected.contains("best energy-delay:"), "no report in:\n{expected}");

    // Victim: same sweep, checkpointing every 100 points. Kill it as
    // soon as at least two generations exist, so the tear below still
    // leaves an older intact generation behind.
    let mut child = codesign()
        .args(sweep_args)
        .args(["--checkpoint", base.to_str().expect("utf-8 base"), "--checkpoint-every", "100"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim sweep spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if generation_files(&base).len() >= 2 {
            // SIGKILL: no atexit handlers, no final checkpoint, no
            // chance to tidy up. (If the child already finished, its
            // forced final checkpoint plus rotation still leaves
            // multiple generations — the resume path below is
            // exercised either way.)
            let _ = child.kill();
            break;
        }
        if child.try_wait().expect("child waits").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoints appeared within 120s");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = child.wait();
    let generations = generation_files(&base);
    assert!(generations.len() >= 2, "expected >=2 generations, got {generations:?}");

    // Tear the newest generation in half, as a crash mid-write would.
    let newest = generations.last().expect("newest generation");
    let len = fs::metadata(newest).expect("newest stats").len();
    let torn = fs::OpenOptions::new().write(true).open(newest).expect("newest opens");
    torn.set_len(len / 2).expect("newest truncates");

    // Resume must fall back to the older intact generation, replay the
    // remainder, and land on the exact bytes of the uninterrupted run.
    let resumed = codesign()
        .args(sweep_args)
        .args(["--checkpoint", base.to_str().expect("utf-8 base"), "--resume"])
        .output()
        .expect("resumed sweep runs");
    assert!(resumed.status.success(), "resume failed: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed), expected, "resumed report diverged from uninterrupted run");
    let notes = stderr(&resumed);
    assert!(notes.contains("resumed from checkpoint generation"), "no resume notice in:\n{notes}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pruned_sweep_reports_the_same_frontier_as_unpruned() {
    let (dir, model) = scratch("prune");
    let model = model.to_str().expect("utf-8 path");
    let axis = buffer_axis(600);
    let args = |prune: bool| {
        let mut v = vec![
            "sweep",
            model,
            "--frontier",
            "--arrays",
            "8,16",
            "--rfs",
            "8",
            "--buffers-kib",
            &axis,
        ];
        if prune {
            v.push("--prune");
        }
        v
    };

    let plain = codesign().args(args(false)).output().expect("unpruned sweep runs");
    assert!(plain.status.success(), "unpruned failed: {}", stderr(&plain));
    let pruned = codesign().args(args(true)).output().expect("pruned sweep runs");
    assert!(pruned.status.success(), "pruned failed: {}", stderr(&pruned));

    // Branch-and-bound is an optimization, never a semantics change.
    assert_eq!(stdout(&pruned), stdout(&plain), "--prune changed the report");
    // And on a long monotone buffer axis it must actually prune.
    let notes = stderr(&pruned);
    // `; swept E of T point(s) (P pruned, S skipped, F failed) in ...`
    let pruned_points: u64 = notes
        .lines()
        .find(|l| l.starts_with("; swept"))
        .and_then(|l| l.split('(').nth(2)?.split(' ').next()?.parse().ok())
        .unwrap_or(0);
    assert!(pruned_points > 0, "nothing pruned on a plateau-heavy axis:\n{notes}");

    let _ = fs::remove_dir_all(&dir);
}
