//! End-to-end tests of the `codesign` binary: real process spawns, real
//! stdout/stderr, real exit codes.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_codesign")).args(args).output().expect("binary spawns")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn list_names_the_zoo() {
    let o = run(&["list"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for name in ["AlexNet", "SqueezeNet v1.0", "1.0-SqNxt-23v5", "SqueezeDet trunk"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn simulate_reports_the_four_metrics() {
    let o = run(&["simulate", "squeezenet-v1.1"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    for field in ["cycles:", "time:", "energy:", "utilization:"] {
        assert!(out.contains(field), "missing {field}");
    }
}

#[test]
fn compare_prints_a_table2_row() {
    let o = run(&["compare", "mobilenet"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("vs OS") && out.contains("vs WS"));
}

#[test]
fn schedule_lists_every_layer() {
    let o = run(&["schedule", "tiny-darknet"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("conv1") && out.contains("total:"));
    // 21 layers + header + total.
    assert!(out.lines().count() >= 23, "{}", out.lines().count());
}

#[test]
fn wave_emits_vcd() {
    let o = run(&["wave", "squeezenet-v1.1", "conv1"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.starts_with("$date"));
    assert!(out.contains("$enddefinitions $end"));
}

#[test]
fn compile_replays_exactly() {
    let o = run(&["compile", "sqnxt-23v5"]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("mode"));
    assert!(out.contains("cycles replayed"));
}

#[test]
fn model_files_load() {
    let dir = std::env::temp_dir();
    let path = dir.join("cli_test_model.net");
    std::fs::write(&path, "network cli-test 3x32x32\nconv c1 8 3 s2 p1\ngap g\nfc f 10\n")
        .expect("temp file writes");
    let o = run(&["simulate", path.to_str().expect("utf-8 temp path")]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("cli-test"));
}

#[test]
fn errors_are_clean_and_nonzero() {
    let cases: &[&[&str]] = &[
        &["simulate", "no-such-network"],
        &["explode", "x"],
        &["simulate", "alexnet", "--array", "9999"],
        &["wave", "alexnet"],
        &["simulate"],
    ];
    for args in cases {
        let o = run(args);
        assert!(!o.status.success(), "{args:?} should fail");
        assert!(!stderr(&o).is_empty(), "{args:?} should explain itself");
    }
}

#[test]
fn faultinject_runs_the_corpus_clean() {
    let o = run(&["faultinject"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("0 panicked"), "{out}");
    assert!(out.contains("-> PASS"), "{out}");
    // The issue demands at least 30 hostile/degenerate cases.
    let listed = out.lines().filter(|l| l.contains("expect ")).count();
    assert!(listed >= 30, "only {listed} cases listed:\n{out}");
}

#[test]
fn rejected_workloads_exit_2() {
    // A syntactically valid .net whose conv kernel exceeds its input
    // plane: parses fine, fails pre-flight validation.
    let dir = std::env::temp_dir();
    let path = dir.join("cli_test_rejected.net");
    std::fs::write(&path, "network rejected 3x4x4\nconv c1 8 11 s1 p0\n")
        .expect("temp file writes");
    let o = run(&["simulate", path.to_str().expect("utf-8 temp path")]);
    assert_eq!(o.status.code(), Some(2), "{}", stderr(&o));
    let err = stderr(&o);
    assert!(err.contains("c1"), "error should name the layer: {err}");

    // Usage errors stay exit 1, distinct from workload rejection.
    let o = run(&["simulate", "no-such-network"]);
    assert_eq!(o.status.code(), Some(1), "{}", stderr(&o));
}

#[test]
fn sweep_completes_with_partial_results() {
    let o = run(&["sweep", "tiny-darknet", "--jobs", "2"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("best energy-delay"));
}

#[test]
fn help_prints_usage() {
    let o = run(&["--help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("usage: codesign"));
}

#[test]
fn overrides_change_the_outcome() {
    let base = stdout(&run(&["simulate", "squeezenet-v1.1"]));
    let small = stdout(&run(&["simulate", "squeezenet-v1.1", "--array", "8"]));
    let cyc = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("cycles:"))
            .and_then(|l| l.split_whitespace().nth(1).map(str::to_owned))
            .expect("cycles line")
    };
    assert_ne!(cyc(&base), cyc(&small));
}
