//! Server and persistence fault-injection corpus (`codesign
//! faultinject --serve`).
//!
//! Extends the simulator-core corpus in `codesign_sim::faultinject` to
//! the serving and persistence layers: hostile clients (oversized and
//! binary-garbage lines, slow-loris partial writes, mid-stream
//! disconnects), resource-exhaustion paths (overloaded fast-reject,
//! per-request deadlines), panic isolation, and torn/corrupt snapshot
//! generations at every byte offset. Every case runs a real server
//! in-process on an ephemeral port and talks to it over real TCP.
//!
//! The contract under test mirrors the sim corpus: hostile inputs cost
//! one typed error and leave the server serving; a crash at any byte
//! offset during autosave never loses the warm start.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use codesign_arch::{AcceleratorConfig, DataflowPolicy};
use codesign_dnn::{NetworkBuilder, Shape};
use codesign_sim::{
    atomic_write, generation_path, recover_cache, scan_generations, write_generation, CaseOutcome,
    FaultReport, SimOptions, Simulator,
};

use crate::serve::{run_serve_opts, ServeOptions};
use crate::RunError;

/// How long any single protocol exchange may take before a case fails.
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(30);

/// Runs the server/persistence corpus and reports per-case outcomes in
/// the same format as the sim corpus. Cases are judged as controls:
/// each must *complete* (uphold its invariant); a violated invariant
/// surfaces as a `violation` rejection, which mismatches the
/// expectation and fails the report.
pub fn run_serve_corpus() -> FaultReport {
    type Case = (&'static str, fn() -> Result<(), String>);
    let cases: Vec<Case> = vec![
        ("serve/oversized-line-answers-usage", case_oversized_line),
        ("serve/binary-garbage-line", case_binary_garbage),
        ("serve/slow-loris-partial-line", case_slow_loris_partial),
        ("serve/slow-loris-disconnect", case_slow_loris_disconnect),
        ("serve/mid-sweep-disconnect", case_mid_sweep_disconnect),
        ("serve/request-deadline-keeps-serving", case_request_deadline),
        ("serve/server-deadline-caps-requests", case_server_deadline),
        ("serve/overloaded-fast-reject", case_overloaded),
        ("serve/request-panic-isolated", case_panic_isolated),
        ("serve/shutdown-races-inflight-sweep", case_shutdown_races_sweep),
        ("snapshot/torn-autosave-at-every-offset-recovers", case_torn_autosave_every_offset),
        ("snapshot/all-candidates-corrupt-is-refused", case_all_candidates_corrupt),
        ("snapshot/zero-length-generation-skipped", case_zero_length_generation),
        ("snapshot/kill-after-autosave-warm-restarts", case_autosave_rotation_and_recovery),
    ];
    // The corpus deliberately injects panics (and catches every one);
    // silence the default hook so expected backtraces don't pollute the
    // report. Payload messages still surface as `Panicked { message }`.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = FaultReport { cases: Vec::new() };
    for (name, run) in cases {
        let outcome = match catch_unwind(AssertUnwindSafe(run)) {
            Ok(Ok(())) => CaseOutcome::Completed,
            Ok(Err(message)) => CaseOutcome::Rejected { kind: "violation".to_owned(), message },
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_owned()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_owned()
                };
                CaseOutcome::Panicked { message }
            }
        };
        report.cases.push((name.to_owned(), false, outcome));
    }
    std::panic::set_hook(previous_hook);
    report
}

// ---------------------------------------------------------------------
// Harness: in-process servers and raw TCP clients.

fn base_opts() -> ServeOptions {
    ServeOptions {
        port: 0,
        jobs: 2,
        cache_load: None,
        cache_save: None,
        deadline_ms: None,
        max_line_bytes: 1 << 20,
        max_connections: 64,
        autosave_every: 0,
        quiet: true,
    }
}

fn run_error_text(e: &RunError) -> String {
    match e {
        RunError::Usage(m) => format!("usage: {m}"),
        RunError::Rejected(m) => format!("rejected: {m}"),
    }
}

/// A server running on its own thread inside this process.
struct TestServer {
    addr: SocketAddr,
    thread: JoinHandle<Result<(), RunError>>,
}

impl TestServer {
    fn start(opts: ServeOptions) -> Result<TestServer, String> {
        let (tx, rx) = mpsc::channel();
        let thread = std::thread::spawn(move || {
            run_serve_opts(&opts, |addr| {
                let _ = tx.send(addr);
            })
        });
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(addr) => Ok(TestServer { addr, thread }),
            Err(_) => match thread.join() {
                Ok(Err(e)) => Err(format!("server failed to start: {}", run_error_text(&e))),
                Ok(Ok(())) => Err("server exited before binding".to_owned()),
                Err(_) => Err("server thread panicked at startup".to_owned()),
            },
        }
    }

    /// Requests a clean shutdown and joins the server thread.
    fn stop(self) -> Result<(), String> {
        let mut c = Client::connect(self.addr)?;
        c.send(r#"{"id":"stop","cmd":"shutdown"}"#)?;
        let _ = c.recv();
        drop(c);
        match self.thread.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(format!("server exited with an error: {}", run_error_text(&e))),
            Err(_) => Err("server thread panicked".to_owned()),
        }
    }
}

/// Starts a server, runs the case body, and always attempts a clean
/// shutdown — a failing case must not leak a listener into later cases.
fn with_server(
    opts: ServeOptions,
    body: impl FnOnce(SocketAddr) -> Result<(), String>,
) -> Result<(), String> {
    let server = TestServer::start(opts)?;
    let addr = server.addr;
    let result = body(addr);
    let stopped = server.stop();
    result.and(stopped)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("client cannot connect: {e}"))?;
        stream
            .set_read_timeout(Some(EXCHANGE_TIMEOUT))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?);
        Ok(Client { writer: stream, reader })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))
    }

    /// One response line; `Ok(None)` when the server closed the
    /// connection.
    fn recv(&mut self) -> Result<Option<String>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line.trim().to_owned())),
            Err(e) => Err(format!("recv failed: {e}")),
        }
    }

    fn recv_some(&mut self) -> Result<String, String> {
        self.recv()?.ok_or_else(|| "server closed the connection".to_owned())
    }

    /// Reads lines until the `done`/`error` terminator, inclusive.
    fn recv_until_done(&mut self) -> Result<Vec<String>, String> {
        let mut lines = Vec::new();
        loop {
            let line = self.recv_some()?;
            let done = line.contains("\"event\":\"done\"") || line.contains("\"event\":\"error\"");
            lines.push(line);
            if done {
                return Ok(lines);
            }
        }
    }

    fn request(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.send(line)?;
        self.recv_until_done()
    }

    /// The server still answers on this connection — the after-hostility
    /// liveness probe every case ends with.
    fn assert_serves(&mut self) -> Result<(), String> {
        let pong = self.request(r#"{"id":"live","cmd":"ping"}"#)?;
        if pong.len() == 1 && pong[0].contains("\"ok\":true") {
            Ok(())
        } else {
            Err(format!("server no longer serves pings: {pong:?}"))
        }
    }
}

fn expect_error_code(lines: &[String], code: &str) -> Result<(), String> {
    let needle = format!("\"code\":\"{code}\"");
    match lines.last() {
        Some(last) if last.contains("\"event\":\"error\"") && last.contains(&needle) => Ok(()),
        other => Err(format!("expected a `{code}` error, got {other:?}")),
    }
}

/// Polls `stats` on fresh connections until `pred` holds.
fn wait_for_stats(
    addr: SocketAddr,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> Result<String, String> {
    let deadline = Instant::now() + EXCHANGE_TIMEOUT;
    loop {
        let mut probe = Client::connect(addr)?;
        let stats = probe
            .request(r#"{"id":"probe","cmd":"stats"}"#)?
            .pop()
            .ok_or("empty stats response")?;
        if pred(&stats) {
            return Ok(stats);
        }
        if Instant::now() >= deadline {
            return Err(format!("timed out waiting for {what}; last stats: {stats}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Extracts a `"field":123` integer from a response line.
fn field_u64(line: &str, field: &str) -> Result<u64, String> {
    let key = format!("\"{field}\":");
    let at = line.find(&key).ok_or_else(|| format!("no {field} in {line}"))?;
    line[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .map_err(|_| format!("bad {field} in {line}"))
}

/// A scratch directory unique to this corpus run, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Result<Scratch, String> {
        let dir =
            std::env::temp_dir().join(format!("codesign-faultserve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create scratch dir: {e}"))?;
        Ok(Scratch(dir))
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small valid cache snapshot (one tiny conv layer — a few hundred
/// bytes, so every-byte-offset torn-write scans stay fast).
fn tiny_snapshot() -> Result<Vec<u8>, String> {
    let net = NetworkBuilder::new("fault-snap", Shape::new(8, 8, 3))
        .conv("c1", 8, 3, 1, 1)
        .finish()
        .map_err(|e| format!("cannot build network: {e}"))?;
    let sim = Simulator::new();
    sim.try_simulate_network(
        &net,
        &AcceleratorConfig::paper_default(),
        DataflowPolicy::PerLayer,
        SimOptions::paper_default(),
    )
    .map_err(|e| format!("cannot simulate: {e}"))?;
    sim.cache_snapshot().map_err(|e| format!("cannot snapshot: {e}"))
}

// ---------------------------------------------------------------------
// Hostile-client cases.

fn case_oversized_line() -> Result<(), String> {
    let mut opts = base_opts();
    opts.max_line_bytes = 256;
    with_server(opts, |addr| {
        let mut c = Client::connect(addr)?;
        let huge = format!("{}\n", "x".repeat(64 * 1024));
        c.writer.write_all(huge.as_bytes()).map_err(|e| format!("send failed: {e}"))?;
        let err = c.recv_some()?;
        if !(err.contains("\"code\":\"usage\"") && err.contains("max-line-bytes")) {
            return Err(format!("expected a usage error naming the line cap, got: {err}"));
        }
        // One error per oversized line, then normal service resumes on
        // the very same connection.
        c.assert_serves()
    })
}

fn case_binary_garbage() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        let mut c = Client::connect(addr)?;
        let garbage: Vec<u8> = (0u16..=255).map(|b| if b == 10 { 7 } else { b as u8 }).collect();
        c.writer.write_all(&garbage).map_err(|e| format!("send failed: {e}"))?;
        c.writer.write_all(b"\n").map_err(|e| format!("send failed: {e}"))?;
        let err = c.recv_some()?;
        if !err.contains("\"code\":\"usage\"") {
            return Err(format!("expected a usage error for binary garbage, got: {err}"));
        }
        c.assert_serves()
    })
}

fn case_slow_loris_partial() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        let mut c = Client::connect(addr)?;
        // A request dribbled in three fragments with pauses longer than
        // the server's read-timeout tick must still parse as one line.
        for fragment in [r#"{"id":"slow","#, r#""cmd":"#, "\"ping\"}\n"] {
            c.writer.write_all(fragment.as_bytes()).map_err(|e| format!("send failed: {e}"))?;
            c.writer.flush().map_err(|e| format!("flush failed: {e}"))?;
            std::thread::sleep(Duration::from_millis(250));
        }
        let pong = c.recv_some()?;
        if !(pong.starts_with(r#"{"id":"slow""#) && pong.contains("\"ok\":true")) {
            return Err(format!("slow-loris request did not complete: {pong}"));
        }
        Ok(())
    })
}

fn case_slow_loris_disconnect() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        {
            let mut loris = Client::connect(addr)?;
            loris.writer.write_all(b"{\"id\":1,").map_err(|e| format!("send failed: {e}"))?;
            loris.writer.flush().map_err(|e| format!("flush failed: {e}"))?;
            std::thread::sleep(Duration::from_millis(250));
            // Vanish mid-line.
        }
        Client::connect(addr)?.assert_serves()
    })
}

fn case_mid_sweep_disconnect() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        {
            let mut a = Client::connect(addr)?;
            a.send(
                r#"{"id":"gone","cmd":"sweep","network":"tiny-darknet","arrays":[8,16,32],"rfs":[8,16],"buffers_kib":[64,128]}"#,
            )?;
            // Disconnect without reading a single streamed delta.
        }
        let mut b = Client::connect(addr)?;
        b.assert_serves()?;
        // The abandoned sweep drains (to a latched-dead writer) and its
        // in-flight entry is removed — no leak, no hang.
        wait_for_stats(addr, "abandoned sweep to drain", |s| {
            field_u64(s, "inflight").is_ok_and(|n| n == 0)
        })?;
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Deadline and admission-control cases.

fn case_request_deadline() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        let mut c = Client::connect(addr)?;
        // A zero budget deterministically cancels at the first chunk
        // boundary: typed deadline error, zero or more prefix deltas.
        let lines = c.request(
            r#"{"id":"dl","cmd":"sweep","network":"tiny-darknet","deadline_ms":0,"arrays":[8,16],"rfs":[8],"buffers_kib":[64]}"#,
        )?;
        expect_error_code(&lines, "deadline")?;
        let last = lines.last().map(String::as_str).unwrap_or_default();
        if !last.contains("prefix") {
            return Err(format!("deadline error must state the prefix guarantee: {last}"));
        }
        // The same connection — and the same sweep without a deadline —
        // still serve.
        let full = c.request(
            r#"{"id":"full","cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8],"buffers_kib":[64]}"#,
        )?;
        let done = full.last().map(String::as_str).unwrap_or_default();
        if field_u64(done, "points")? != 2 {
            return Err(format!("post-deadline sweep did not complete: {done}"));
        }
        c.assert_serves()
    })
}

fn case_server_deadline() -> Result<(), String> {
    let mut opts = base_opts();
    opts.deadline_ms = Some(0);
    with_server(opts, |addr| {
        let mut c = Client::connect(addr)?;
        // The server-wide budget applies without any per-request field…
        let lines = c.request(r#"{"id":1,"cmd":"codesign","network":"tiny-darknet"}"#)?;
        expect_error_code(&lines, "deadline")?;
        // …and a request cannot raise it past the server's cap.
        let lines =
            c.request(r#"{"id":2,"cmd":"simulate","network":"tiny-darknet","deadline_ms":60000}"#)?;
        expect_error_code(&lines, "deadline")?;
        // Non-compute commands never carry a deadline.
        c.assert_serves()
    })
}

fn case_overloaded() -> Result<(), String> {
    let mut opts = base_opts();
    opts.max_connections = 1;
    with_server(opts, |addr| {
        let mut a = Client::connect(addr)?;
        a.assert_serves()?; // guarantees A holds the only slot
        let mut b = Client::connect(addr)?;
        let reject = b.recv_some()?;
        if !(reject.contains("\"code\":\"overloaded\"") && reject.contains("\"id\":null")) {
            return Err(format!("expected an overloaded fast-reject, got: {reject}"));
        }
        if b.recv()?.is_some() {
            return Err("rejected connection was not closed".to_owned());
        }
        a.assert_serves()?;
        drop(a);
        // Freed slot: a later client is admitted (poll — the server
        // notices the disconnect on its next read tick).
        let deadline = Instant::now() + EXCHANGE_TIMEOUT;
        loop {
            let mut c = Client::connect(addr)?;
            if c.assert_serves().is_ok() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err("slot never freed after disconnect".to_owned());
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    })
}

fn case_panic_isolated() -> Result<(), String> {
    with_server(base_opts(), |addr| {
        let mut c = Client::connect(addr)?;
        let lines = c.request(r#"{"id":"boom","cmd":"__panic__"}"#)?;
        expect_error_code(&lines, "internal")?;
        c.assert_serves()?;
        let stats = c.request(r#"{"id":"s","cmd":"stats"}"#)?.pop().ok_or("no stats")?;
        if !stats.contains("\"serve.internal\":1") {
            return Err(format!("serve.internal counter missing: {stats}"));
        }
        Ok(())
    })
}

fn case_shutdown_races_sweep() -> Result<(), String> {
    let server = TestServer::start(base_opts())?;
    let addr = server.addr;
    let mut a = Client::connect(addr)?;
    a.send(r#"{"id":"race","cmd":"sweep","network":"squeezenet-v1.1"}"#)?;
    let mut b = Client::connect(addr)?;
    b.send(r#"{"id":"bye","cmd":"shutdown"}"#)?;
    let _ = b.recv();
    drop(b);
    // The in-flight sweep either completes its stream or the connection
    // closes — but A must not hang, and the server must join cleanly.
    loop {
        match a.recv()? {
            None => break,
            Some(line)
                if line.contains("\"event\":\"done\"") || line.contains("\"event\":\"error\"") =>
            {
                break
            }
            Some(_) => {}
        }
    }
    drop(a);
    match server.thread.join() {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("server errored during racing shutdown: {}", run_error_text(&e))),
        Err(_) => Err("server thread panicked during racing shutdown".to_owned()),
    }
}

// ---------------------------------------------------------------------
// Persistence cases.

fn case_torn_autosave_every_offset() -> Result<(), String> {
    // THE acceptance criterion: a kill -9 at *any* byte offset during a
    // (hypothetically non-atomic) autosave must never lose the warm
    // start — recovery refuses the torn newest generation and loads the
    // previous one. Exhaustive over every prefix length of a real
    // snapshot.
    let scratch = Scratch::new("torn")?;
    let base = scratch.path("cache.snap");
    let snap = tiny_snapshot()?;
    write_generation(&base, 1, &snap, 8).map_err(|e| format!("cannot write gen 1: {e}"))?;
    for cut in 0..snap.len() {
        atomic_write(&generation_path(&base, 2), &snap[..cut])
            .map_err(|e| format!("cannot write torn gen 2: {e}"))?;
        let sim = Simulator::new();
        let rec = recover_cache(&sim, &base).map_err(|e| format!("recovery errored: {e}"))?;
        match rec.loaded {
            Some(loaded) if loaded.generation == Some(1) => {}
            other => {
                return Err(format!(
                    "cut at byte {cut}/{}: expected generation 1 to load, got {other:?}",
                    snap.len()
                ))
            }
        }
        if rec.refused.len() != 1 {
            return Err(format!("cut at byte {cut}: expected 1 refusal, got {:?}", rec.refused));
        }
    }
    Ok(())
}

fn case_all_candidates_corrupt() -> Result<(), String> {
    // Every candidate torn or bit-flipped: the server must refuse to
    // start (exit-2 semantics), never serve from a half-trusted cache.
    let scratch = Scratch::new("all-corrupt")?;
    let base = scratch.path("cache.snap");
    let snap = tiny_snapshot()?;
    let mut flipped = snap.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    atomic_write(&base, &flipped).map_err(|e| format!("cannot write base: {e}"))?;
    atomic_write(&generation_path(&base, 1), &snap[..snap.len() / 2])
        .map_err(|e| format!("cannot write gen 1: {e}"))?;
    atomic_write(&generation_path(&base, 2), b"")
        .map_err(|e| format!("cannot write gen 2: {e}"))?;
    let mut opts = base_opts();
    opts.cache_load = Some(base.to_string_lossy().into_owned());
    match run_serve_opts(&opts, |_| {}) {
        Err(RunError::Rejected(m)) if m.contains("refused") => Ok(()),
        Err(e) => {
            Err(format!("expected a rejection naming the refusals, got: {}", run_error_text(&e)))
        }
        Ok(()) => Err("server started from all-corrupt snapshots".to_owned()),
    }
}

fn case_zero_length_generation() -> Result<(), String> {
    let scratch = Scratch::new("zero-gen")?;
    let base = scratch.path("cache.snap");
    let snap = tiny_snapshot()?;
    write_generation(&base, 1, &snap, 8).map_err(|e| format!("cannot write gen 1: {e}"))?;
    atomic_write(&generation_path(&base, 2), b"")
        .map_err(|e| format!("cannot write gen 2: {e}"))?;
    let mut opts = base_opts();
    opts.cache_load = Some(base.to_string_lossy().into_owned());
    with_server(opts, |addr| {
        let mut c = Client::connect(addr)?;
        let stats = c.request(r#"{"id":"s","cmd":"stats"}"#)?.pop().ok_or("no stats")?;
        if field_u64(&stats, "entries")? == 0 {
            return Err(format!("warm start lost despite a valid generation: {stats}"));
        }
        if !stats.contains("\"serve.snapshot.refused\":1") {
            return Err(format!("refused-snapshot counter missing: {stats}"));
        }
        Ok(())
    })
}

fn case_autosave_rotation_and_recovery() -> Result<(), String> {
    // A serving lifetime end to end: autosave every request into
    // rotating generations, die, suffer a torn newest generation, and
    // still warm-start from the survivor.
    let scratch = Scratch::new("autosave")?;
    let base = scratch.path("cache.snap");
    let base_str = base.to_string_lossy().into_owned();
    let mut opts = base_opts();
    opts.cache_save = Some(base_str.clone());
    opts.autosave_every = 1;
    with_server(opts, |addr| {
        let mut c = Client::connect(addr)?;
        for (i, array) in [8usize, 16, 32, 8, 16].iter().enumerate() {
            let done = c
                .request(&format!(
                    r#"{{"id":{i},"cmd":"simulate","network":"tiny-darknet","array":{array}}}"#
                ))?
                .pop()
                .ok_or("no simulate response")?;
            if !done.contains("\"cycles\":") {
                return Err(format!("simulate failed mid-corpus: {done}"));
            }
        }
        let gens = scan_generations(&base);
        if gens.is_empty() {
            return Err("autosave produced no generation files".to_owned());
        }
        if gens.len() > 3 {
            return Err(format!("rotation kept too many generations: {gens:?}"));
        }
        Ok(())
    })?;
    // "kill -9 during the next autosave": tear the newest generation.
    let gens = scan_generations(&base);
    let (_, newest) = gens.last().ok_or("no generations after shutdown")?;
    let bytes = std::fs::read(newest).map_err(|e| format!("cannot read newest gen: {e}"))?;
    std::fs::write(newest, &bytes[..bytes.len() / 3])
        .map_err(|e| format!("cannot tear newest gen: {e}"))?;
    let mut opts = base_opts();
    opts.cache_load = Some(base_str);
    with_server(opts, |addr| {
        let mut c = Client::connect(addr)?;
        let stats = c.request(r#"{"id":"s","cmd":"stats"}"#)?.pop().ok_or("no stats")?;
        if field_u64(&stats, "entries")? == 0 {
            return Err(format!("warm start lost after torn autosave: {stats}"));
        }
        if !stats.contains("\"serve.snapshot.refused\":1") {
            return Err(format!("refused-snapshot counter missing: {stats}"));
        }
        // The recovered cache answers the old workload without misses.
        let done = c
            .request(r#"{"id":"warm","cmd":"simulate","network":"tiny-darknet","array":8}"#)?
            .pop()
            .ok_or("no simulate response")?;
        if !done.contains("\"cycles\":") {
            return Err(format!("recovered server cannot simulate: {done}"));
        }
        let stats = c.request(r#"{"id":"s2","cmd":"stats"}"#)?.pop().ok_or("no stats")?;
        if field_u64(&stats, "misses")? != 0 {
            return Err(format!("recovered cache missed on a warm workload: {stats}"));
        }
        Ok(())
    })
}
