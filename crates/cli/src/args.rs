//! Hand-rolled argument parsing for the `codesign` binary.

use std::fmt;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, InvalidConfigError};

/// The selected subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Simulate a network end to end.
    Simulate,
    /// Print the per-layer WS/OS schedule.
    Schedule,
    /// Print the compiled command stream.
    Compile,
    /// Compare hybrid vs the fixed references (one Table-2 row).
    Compare,
    /// Sweep the hardware design space.
    Sweep,
    /// Dump a layer's cycle-machine waveform as VCD.
    Wave,
    /// List the model zoo.
    List,
    /// Run the fault-injection corpus against the simulator.
    Faultinject,
    /// Run the line-delimited-JSON co-design server.
    Serve,
    /// Run the functional executors and assert zoo-wide bit-equality.
    VerifyFunctional,
}

/// Fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Subcommand.
    pub action: Action,
    /// Network name (zoo) or path to a `.net` text file.
    pub network: Option<String>,
    /// Dataflow policy (default: per-layer hybrid).
    pub policy: DataflowPolicy,
    /// Hardware overrides applied to the paper default.
    pub array_size: Option<usize>,
    /// Register-file depth override.
    pub rf_depth: Option<usize>,
    /// Global buffer size override, in KiB.
    pub buffer_kib: Option<usize>,
    /// Batch size (default 1).
    pub batch: u64,
    /// Core count (default 1).
    pub cores: usize,
    /// Worker threads for the sweep fan-out (`0` = one per core).
    pub jobs: usize,
    /// Layer name (for `wave`).
    pub layer: Option<String>,
    /// Write a Chrome-trace JSON of the run to this path.
    pub trace: Option<String>,
    /// Write an aggregated metrics JSON of the run to this path.
    pub metrics: Option<String>,
    /// TCP port for `serve` (`0` = ephemeral, printed at startup).
    pub port: u16,
    /// Warm-start the simulation cache from this snapshot file.
    pub cache_load: Option<String>,
    /// Save the simulation cache to this snapshot file at the end.
    pub cache_save: Option<String>,
    /// serve: per-request compute budget in milliseconds (`None` = no
    /// deadline). Per-request `deadline_ms` overrides are capped at this.
    pub deadline_ms: Option<u64>,
    /// serve: maximum request-line length in bytes before the line is
    /// rejected with a `usage` error instead of accumulating unbounded.
    pub max_line_bytes: usize,
    /// serve: maximum concurrent connections; at capacity new
    /// connections are fast-rejected with an `overloaded` error.
    pub max_connections: usize,
    /// serve: autosave the cache to a rotating `--cache-save` generation
    /// file every N handled requests (`0` = off).
    pub autosave_every: u64,
    /// faultinject: also run the server/persistence corpus (`--serve`).
    pub serve_faults: bool,
    /// sweep: stream the bounded-memory online Pareto frontier instead
    /// of materializing every point (implied by the other streaming
    /// flags; see [`Invocation::frontier_mode`]).
    pub frontier: bool,
    /// sweep: evaluation chunk size for the streaming pipeline.
    pub chunk: Option<usize>,
    /// sweep: enable dominance branch-and-bound pruning.
    pub prune: bool,
    /// sweep: override the array-size axis (comma-separated edges).
    pub arrays: Option<Vec<usize>>,
    /// sweep: override the register-file-depth axis.
    pub rfs: Option<Vec<usize>>,
    /// sweep: override the buffer axis, in KiB.
    pub buffers_kib: Option<Vec<usize>>,
    /// sweep: base path for crash-safe checkpoint generations.
    pub checkpoint: Option<String>,
    /// sweep: minimum completed points between checkpoints.
    pub checkpoint_every: u64,
    /// sweep: resume from the newest intact checkpoint generation.
    pub resume: bool,
}

impl Invocation {
    /// Builds the accelerator configuration with the overrides applied.
    ///
    /// # Errors
    ///
    /// Propagates [`InvalidConfigError`] for out-of-range overrides.
    pub fn config(&self) -> Result<AcceleratorConfig, InvalidConfigError> {
        let mut b = AcceleratorConfig::builder();
        if let Some(n) = self.array_size {
            b.array_size(n);
        }
        if let Some(r) = self.rf_depth {
            b.rf_depth(r);
        }
        if let Some(kb) = self.buffer_kib {
            b.global_buffer_bytes(kb * 1024);
        }
        b.build()
    }

    /// Whether `sweep` should run the bounded-memory streaming frontier
    /// pipeline: `--frontier`, or any flag that only makes sense there.
    /// The classic full-materialization sweep (and its byte-exact
    /// output) remains the default.
    pub fn frontier_mode(&self) -> bool {
        self.frontier
            || self.chunk.is_some()
            || self.prune
            || self.arrays.is_some()
            || self.rfs.is_some()
            || self.buffers_kib.is_some()
            || self.checkpoint.is_some()
            || self.resume
    }
}

/// Error from [`parse_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// The usage text.
pub const USAGE: &str = "\
usage: codesign <command> [network] [options]

commands:
  simulate <net>   end-to-end cycles, time, energy, utilization
  schedule <net>   per-layer WS/OS schedule (Figure-1 style)
  compile  <net>   compiled accelerator command stream
  compare  <net>   hybrid vs fixed WS/OS references (Table-2 row)
  sweep    <net>   hardware design-space sweep
  wave     <net> <layer>  layer waveform as VCD (stdout; pipe to a file)
  list             list the model zoo
  faultinject      run the hostile-input corpus against the simulator
                   (--serve adds the server/persistence corpus)
  serve            run the line-delimited-JSON co-design server
  verify-functional [net]  run the GEMM and WS/OS functional executors
                   and assert bit-equality against the reference ops
                   (whole zoo when no network is given); prints a
                   MACs/sec throughput headline

<net> is a zoo name (try `codesign list`) or a path to a .net file.

exit codes: 0 success; 1 usage or I/O error; 2 the workload or
configuration was rejected by the simulator (preflight validation,
infeasible tiling, overflow-scale shapes, ...) or the fault-injection
corpus failed.

options:
  --arch ws|os|hybrid    dataflow policy            (default hybrid)
  --array N              PE array edge              (default 32)
  --rf R                 register-file depth        (default 16)
  --buffer KB            global buffer KiB          (default 128)
  --batch B              batch size                 (default 1)
  --cores C              core count                 (default 1)
  --jobs N               sweep worker threads, 0 = one per core
                                                    (default 0)
  --trace PATH           write a Chrome-trace JSON (about:tracing /
                         ui.perfetto.dev) of the simulated run
  --metrics PATH         write an aggregated metrics JSON snapshot
  --port N               serve: TCP port, 0 = ephemeral (default 7227)
  --cache-load PATH      sweep/compare/serve: warm-start the simulation
                         cache from a snapshot file (serve also scans
                         PATH.gen-K generation files, newest valid wins)
  --cache-save PATH      sweep/compare/serve: save the simulation cache
                         to a snapshot file at the end
  --deadline-ms MS       serve: per-request compute budget; exceeded
                         requests answer a `deadline` error (default
                         none; per-request deadline_ms is capped here)
  --max-line-bytes N     serve: longest accepted request line (default
                         1048576, min 64); longer lines answer `usage`
  --max-connections N    serve: concurrent connection slots (default 64);
                         at capacity connections get one `overloaded`
                         error and are closed
  --autosave-every N     serve: autosave the cache into rotating
                         --cache-save generation files every N requests
                         (default 0 = off; requires --cache-save)
  --serve                faultinject: also run the server/persistence
                         hostile corpus (slow clients, torn snapshots)
  --frontier             sweep: stream the online Pareto frontier with
                         bounded memory instead of materializing every
                         point (implied by the flags below)
  --chunk N              sweep: streaming evaluation chunk (default 64)
  --prune                sweep: dominance branch-and-bound — skip buffer
                         segments provably off the frontier
  --arrays LIST          sweep: comma-separated PE array edges
  --rfs LIST             sweep: comma-separated register-file depths
  --buffers-kib LIST     sweep: comma-separated buffer sizes in KiB
  --checkpoint PATH      sweep: write crash-safe checkpoint generations
                         to PATH.gen-K while sweeping
  --checkpoint-every N   sweep: completed points between checkpoints
                         (default 2048; requires --checkpoint)
  --resume               sweep: resume from the newest intact checkpoint
                         generation under --checkpoint
";

fn parse_list(flag: &str, value: Option<String>) -> Result<Vec<usize>, ParseArgsError> {
    let raw =
        value.ok_or_else(|| ParseArgsError(format!("{flag} requires a comma-separated list")))?;
    raw.split(',')
        .map(|item| item.trim().parse())
        .collect::<Result<Vec<usize>, _>>()
        .map_err(|_| ParseArgsError(format!("bad value for {flag} (comma-separated integers)")))
}

fn parse_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<String>,
) -> Result<T, ParseArgsError> {
    value
        .ok_or_else(|| ParseArgsError(format!("{flag} requires a value")))?
        .parse()
        .map_err(|_| ParseArgsError(format!("bad value for {flag}")))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] with a user-facing message on any malformed
/// input.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Invocation, ParseArgsError> {
    let mut it = args.into_iter();
    let action = match it.next().as_deref() {
        Some("simulate") => Action::Simulate,
        Some("schedule") => Action::Schedule,
        Some("compile") => Action::Compile,
        Some("compare") => Action::Compare,
        Some("sweep") => Action::Sweep,
        Some("wave") => Action::Wave,
        Some("list") => Action::List,
        Some("faultinject") => Action::Faultinject,
        Some("serve") => Action::Serve,
        Some("verify-functional") => Action::VerifyFunctional,
        Some(other) => return Err(ParseArgsError(format!("unknown command `{other}`"))),
        None => return Err(ParseArgsError("missing command".to_owned())),
    };
    let mut inv = Invocation {
        action,
        network: None,
        policy: DataflowPolicy::PerLayer,
        array_size: None,
        rf_depth: None,
        buffer_kib: None,
        batch: 1,
        cores: 1,
        jobs: 0,
        layer: None,
        trace: None,
        metrics: None,
        port: 7227,
        cache_load: None,
        cache_save: None,
        deadline_ms: None,
        max_line_bytes: 1 << 20,
        max_connections: 64,
        autosave_every: 0,
        serve_faults: false,
        frontier: false,
        chunk: None,
        prune: false,
        arrays: None,
        rfs: None,
        buffers_kib: None,
        checkpoint: None,
        checkpoint_every: 2048,
        resume: false,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => {
                inv.policy = match it.next().as_deref() {
                    Some("ws") => DataflowPolicy::Fixed(Dataflow::WeightStationary),
                    Some("os") => DataflowPolicy::Fixed(Dataflow::OutputStationary),
                    Some("hybrid") => DataflowPolicy::PerLayer,
                    other => {
                        return Err(ParseArgsError(format!(
                            "--arch must be ws, os, or hybrid (got {:?})",
                            other.unwrap_or("nothing")
                        )))
                    }
                };
            }
            "--array" => inv.array_size = Some(parse_value("--array", it.next())?),
            "--rf" => inv.rf_depth = Some(parse_value("--rf", it.next())?),
            "--buffer" => inv.buffer_kib = Some(parse_value("--buffer", it.next())?),
            "--batch" => inv.batch = parse_value("--batch", it.next())?,
            "--cores" => inv.cores = parse_value("--cores", it.next())?,
            "--jobs" => inv.jobs = parse_value("--jobs", it.next())?,
            "--trace" => inv.trace = Some(parse_value("--trace", it.next())?),
            "--metrics" => inv.metrics = Some(parse_value("--metrics", it.next())?),
            "--port" => inv.port = parse_value("--port", it.next())?,
            "--cache-load" => inv.cache_load = Some(parse_value("--cache-load", it.next())?),
            "--cache-save" => inv.cache_save = Some(parse_value("--cache-save", it.next())?),
            "--deadline-ms" => inv.deadline_ms = Some(parse_value("--deadline-ms", it.next())?),
            "--max-line-bytes" => inv.max_line_bytes = parse_value("--max-line-bytes", it.next())?,
            "--max-connections" => {
                inv.max_connections = parse_value("--max-connections", it.next())?
            }
            "--autosave-every" => inv.autosave_every = parse_value("--autosave-every", it.next())?,
            "--serve" => inv.serve_faults = true,
            "--frontier" => inv.frontier = true,
            "--chunk" => inv.chunk = Some(parse_value("--chunk", it.next())?),
            "--prune" => inv.prune = true,
            "--arrays" => inv.arrays = Some(parse_list("--arrays", it.next())?),
            "--rfs" => inv.rfs = Some(parse_list("--rfs", it.next())?),
            "--buffers-kib" => inv.buffers_kib = Some(parse_list("--buffers-kib", it.next())?),
            "--checkpoint" => inv.checkpoint = Some(parse_value("--checkpoint", it.next())?),
            "--checkpoint-every" => {
                inv.checkpoint_every = parse_value("--checkpoint-every", it.next())?
            }
            "--resume" => inv.resume = true,
            flag if flag.starts_with("--") => {
                return Err(ParseArgsError(format!("unknown option `{flag}`")));
            }
            name if inv.network.is_none() => inv.network = Some(name.to_owned()),
            name if inv.action == Action::Wave && inv.layer.is_none() => {
                inv.layer = Some(name.to_owned())
            }
            extra => return Err(ParseArgsError(format!("unexpected argument `{extra}`"))),
        }
    }
    if inv.network.is_none()
        && !matches!(
            inv.action,
            Action::List | Action::Faultinject | Action::Serve | Action::VerifyFunctional
        )
    {
        return Err(ParseArgsError("this command needs a network".to_owned()));
    }
    if (inv.cache_load.is_some() || inv.cache_save.is_some())
        && !matches!(inv.action, Action::Sweep | Action::Compare | Action::Serve)
    {
        return Err(ParseArgsError(
            "--cache-load/--cache-save apply to sweep, compare, and serve".to_owned(),
        ));
    }
    let serve_only: &[(&str, bool)] = &[
        ("--deadline-ms", inv.deadline_ms.is_some()),
        ("--max-line-bytes", inv.max_line_bytes != 1 << 20),
        ("--max-connections", inv.max_connections != 64),
        ("--autosave-every", inv.autosave_every != 0),
    ];
    if inv.action != Action::Serve {
        if let Some((flag, _)) = serve_only.iter().find(|(_, set)| *set) {
            return Err(ParseArgsError(format!("{flag} applies to serve only")));
        }
    }
    if inv.serve_faults && inv.action != Action::Faultinject {
        return Err(ParseArgsError("--serve applies to faultinject only".to_owned()));
    }
    let sweep_only: &[(&str, bool)] = &[
        ("--frontier", inv.frontier),
        ("--chunk", inv.chunk.is_some()),
        ("--prune", inv.prune),
        ("--arrays", inv.arrays.is_some()),
        ("--rfs", inv.rfs.is_some()),
        ("--buffers-kib", inv.buffers_kib.is_some()),
        ("--checkpoint", inv.checkpoint.is_some()),
        ("--checkpoint-every", inv.checkpoint_every != 2048),
        ("--resume", inv.resume),
    ];
    if inv.action != Action::Sweep {
        if let Some((flag, _)) = sweep_only.iter().find(|(_, set)| *set) {
            return Err(ParseArgsError(format!("{flag} applies to sweep only")));
        }
    }
    if inv.chunk == Some(0) {
        return Err(ParseArgsError("--chunk must be at least 1".to_owned()));
    }
    if inv.checkpoint_every == 0 {
        return Err(ParseArgsError("--checkpoint-every must be at least 1".to_owned()));
    }
    if inv.checkpoint.is_none() && (inv.resume || inv.checkpoint_every != 2048) {
        return Err(ParseArgsError("--resume/--checkpoint-every require --checkpoint".to_owned()));
    }
    for (flag, axis) in
        [("--arrays", &inv.arrays), ("--rfs", &inv.rfs), ("--buffers-kib", &inv.buffers_kib)]
    {
        if let Some(values) = axis {
            if values.is_empty() || values.contains(&0) {
                return Err(ParseArgsError(format!("{flag} needs positive values")));
            }
        }
    }
    if inv.max_line_bytes < 64 {
        return Err(ParseArgsError("--max-line-bytes must be at least 64".to_owned()));
    }
    if inv.max_connections == 0 {
        return Err(ParseArgsError("--max-connections must be at least 1".to_owned()));
    }
    if inv.autosave_every != 0 && inv.cache_save.is_none() {
        return Err(ParseArgsError("--autosave-every requires --cache-save".to_owned()));
    }
    if inv.action == Action::Wave && inv.layer.is_none() {
        return Err(ParseArgsError("`wave` needs a layer name (see `schedule`)".to_owned()));
    }
    if inv.batch == 0 {
        return Err(ParseArgsError("--batch must be at least 1".to_owned()));
    }
    if inv.cores == 0 {
        return Err(ParseArgsError("--cores must be at least 1".to_owned()));
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Invocation, ParseArgsError> {
        parse_args(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_a_full_invocation() {
        let inv = parse(
            "simulate mobilenet --arch ws --array 16 --rf 8 --buffer 64 --batch 4 --cores 2 --jobs 3",
        )
        .unwrap();
        assert_eq!(inv.action, Action::Simulate);
        assert_eq!(inv.network.as_deref(), Some("mobilenet"));
        assert_eq!(inv.policy, DataflowPolicy::Fixed(Dataflow::WeightStationary));
        assert_eq!(inv.array_size, Some(16));
        assert_eq!(inv.batch, 4);
        assert_eq!(inv.cores, 2);
        assert_eq!(inv.jobs, 3);
        let cfg = inv.config().unwrap();
        assert_eq!(cfg.array_size(), 16);
        assert_eq!(cfg.global_buffer_bytes(), 64 * 1024);
    }

    #[test]
    fn defaults_are_paper_defaults() {
        let inv = parse("compare squeezenet").unwrap();
        assert_eq!(inv.policy, DataflowPolicy::PerLayer);
        assert_eq!(inv.jobs, 0, "jobs defaults to one worker per core");
        let cfg = inv.config().unwrap();
        assert_eq!(cfg.array_size(), 32);
        assert_eq!(cfg.rf_depth(), 16);
    }

    #[test]
    fn list_needs_no_network() {
        assert_eq!(parse("list").unwrap().action, Action::List);
        assert!(parse("simulate").is_err());
    }

    #[test]
    fn faultinject_needs_no_network() {
        assert_eq!(parse("faultinject").unwrap().action, Action::Faultinject);
    }

    #[test]
    fn wave_takes_a_layer_operand() {
        let inv = parse("wave squeezenet conv1").unwrap();
        assert_eq!(inv.action, Action::Wave);
        assert_eq!(inv.layer.as_deref(), Some("conv1"));
        assert!(parse("wave squeezenet").is_err());
    }

    #[test]
    fn trace_and_metrics_take_paths() {
        let inv = parse("simulate squeezenet --trace t.json --metrics m.json").unwrap();
        assert_eq!(inv.trace.as_deref(), Some("t.json"));
        assert_eq!(inv.metrics.as_deref(), Some("m.json"));
        let inv = parse("compare squeezenet").unwrap();
        assert_eq!((inv.trace, inv.metrics), (None, None));
        assert!(parse("simulate squeezenet --trace").is_err());
        assert!(parse("simulate squeezenet --metrics").is_err());
    }

    #[test]
    fn serve_takes_port_and_cache_flags_without_a_network() {
        let inv = parse("serve --port 0 --jobs 2 --cache-load a.snap --cache-save b.snap").unwrap();
        assert_eq!(inv.action, Action::Serve);
        assert_eq!(inv.port, 0);
        assert_eq!(inv.cache_load.as_deref(), Some("a.snap"));
        assert_eq!(inv.cache_save.as_deref(), Some("b.snap"));
        assert_eq!(parse("serve").unwrap().port, 7227, "default port");
        assert!(parse("serve --port").is_err());
        assert!(parse("serve --port nine").is_err());
        assert!(parse("serve --port 99999").is_err(), "port must fit u16");
    }

    #[test]
    fn cache_flags_apply_to_sweep_compare_and_serve_only() {
        assert!(parse("sweep tiny-darknet --cache-save s.snap").is_ok());
        assert!(parse("compare tiny-darknet --cache-load s.snap").is_ok());
        assert!(parse("simulate tiny-darknet --cache-load s.snap").is_err());
        assert!(parse("list --cache-save s.snap").is_err());
    }

    #[test]
    fn serve_hardening_flags_parse_with_defaults() {
        let inv = parse("serve").unwrap();
        assert_eq!(inv.deadline_ms, None, "no deadline by default");
        assert_eq!(inv.max_line_bytes, 1 << 20);
        assert_eq!(inv.max_connections, 64);
        assert_eq!(inv.autosave_every, 0, "autosave off by default");
        let inv = parse(
            "serve --deadline-ms 250 --max-line-bytes 4096 --max-connections 2 \
             --cache-save s.snap --autosave-every 10",
        )
        .unwrap();
        assert_eq!(inv.deadline_ms, Some(250));
        assert_eq!(inv.max_line_bytes, 4096);
        assert_eq!(inv.max_connections, 2);
        assert_eq!(inv.autosave_every, 10);
    }

    #[test]
    fn serve_hardening_flags_are_validated() {
        assert!(parse("serve --max-line-bytes 8").is_err(), "line cap floor");
        assert!(parse("serve --max-connections 0").is_err(), "at least one slot");
        assert!(parse("serve --autosave-every 5").is_err(), "autosave needs --cache-save");
        assert!(parse("sweep tiny-darknet --deadline-ms 100").is_err(), "serve-only flag");
        assert!(parse("simulate net --max-connections 2").is_err(), "serve-only flag");
        assert!(parse("sweep tiny-darknet --autosave-every 3").is_err(), "serve-only flag");
    }

    #[test]
    fn faultinject_serve_flag() {
        assert!(!parse("faultinject").unwrap().serve_faults);
        assert!(parse("faultinject --serve").unwrap().serve_faults);
        assert!(parse("serve --serve").is_err(), "--serve is faultinject-only");
        assert!(parse("sweep tiny-darknet --serve").is_err());
    }

    #[test]
    fn verify_functional_network_is_optional() {
        let inv = parse("verify-functional").unwrap();
        assert_eq!(inv.action, Action::VerifyFunctional);
        assert_eq!(inv.network, None, "no network means the whole zoo");
        let inv = parse("verify-functional squeezenet-v1.1 --jobs 4 --array 16").unwrap();
        assert_eq!(inv.network.as_deref(), Some("squeezenet-v1.1"));
        assert_eq!(inv.jobs, 4);
        assert_eq!(inv.array_size, Some(16));
    }

    #[test]
    fn streaming_sweep_flags_parse() {
        let inv = parse(
            "sweep tiny-darknet --frontier --chunk 32 --prune --arrays 8,16 --rfs 8 \
             --buffers-kib 64,128,256 --checkpoint ck/sweep --checkpoint-every 100 --resume",
        )
        .unwrap();
        assert!(inv.frontier && inv.prune && inv.resume);
        assert_eq!(inv.chunk, Some(32));
        assert_eq!(inv.arrays.as_deref(), Some(&[8, 16][..]));
        assert_eq!(inv.rfs.as_deref(), Some(&[8][..]));
        assert_eq!(inv.buffers_kib.as_deref(), Some(&[64, 128, 256][..]));
        assert_eq!(inv.checkpoint.as_deref(), Some("ck/sweep"));
        assert_eq!(inv.checkpoint_every, 100);
        assert!(inv.frontier_mode());
    }

    #[test]
    fn any_streaming_flag_implies_frontier_mode_but_plain_sweep_stays_classic() {
        assert!(!parse("sweep tiny-darknet").unwrap().frontier_mode());
        assert!(!parse("sweep tiny-darknet --jobs 2").unwrap().frontier_mode());
        for flags in [
            "--frontier",
            "--chunk 8",
            "--prune",
            "--arrays 8",
            "--rfs 16",
            "--buffers-kib 64",
            "--checkpoint c.ck",
        ] {
            assert!(
                parse(&format!("sweep tiny-darknet {flags}")).unwrap().frontier_mode(),
                "{flags} should imply frontier mode"
            );
        }
    }

    #[test]
    fn streaming_sweep_flags_are_validated() {
        assert!(parse("simulate net --frontier").is_err(), "sweep-only flag");
        assert!(parse("compare net --chunk 8").is_err(), "sweep-only flag");
        assert!(parse("serve --prune").is_err(), "sweep-only flag");
        assert!(parse("list --arrays 8,16").is_err(), "sweep-only flag");
        assert!(parse("sweep net --chunk 0").is_err(), "chunk floor");
        assert!(parse("sweep net --resume").is_err(), "resume needs --checkpoint");
        assert!(parse("sweep net --checkpoint-every 5").is_err(), "needs --checkpoint");
        assert!(parse("sweep net --checkpoint c --checkpoint-every 0").is_err());
        assert!(parse("sweep net --arrays").is_err(), "list needs a value");
        assert!(parse("sweep net --arrays 8,x").is_err(), "list must be integers");
        assert!(parse("sweep net --buffers-kib 64,0").is_err(), "positive values only");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("").is_err());
        assert!(parse("explode net").is_err());
        assert!(parse("simulate net --arch sideways").is_err());
        assert!(parse("simulate net --array").is_err());
        assert!(parse("simulate net --array twelve").is_err());
        assert!(parse("simulate net --frobnicate 3").is_err());
        assert!(parse("simulate net extra").is_err());
        assert!(parse("simulate net --batch 0").is_err());
        assert!(parse("simulate net --cores 0").is_err());
    }

    #[test]
    fn config_surfaces_invalid_overrides() {
        let inv = parse("simulate net --array 1000").unwrap();
        assert!(inv.config().is_err());
    }
}
