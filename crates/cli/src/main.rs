//! `codesign` — command-line front end to the co-design toolkit.
//!
//! ```text
//! codesign simulate squeezenet-v1.0
//! codesign schedule mobilenet --array 16
//! codesign compile my_model.net --arch os
//! codesign compare squeezenext
//! codesign sweep tiny-darknet
//! codesign list
//! ```

mod args;

use std::fs;
use std::process::ExitCode;

use codesign_arch::EnergyModel;
use codesign_core::{best_by_energy_delay, ArchitectureComparison, NetworkSchedule, SweepSpace};
use codesign_dnn::{parse_network, zoo, Network};
use codesign_sim::{
    compare_dataflows, cycle, record_network, simulate_network_batched, simulate_network_multicore,
    ConvWork, MultiCoreConfig, Program, SimOptions, Simulator,
};
use codesign_trace::{chrome_trace, MetricsSnapshot, Tracer};

use args::{parse_args, Action, Invocation, USAGE};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return if argv.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let inv = match parse_args(argv) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("codesign: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("codesign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_network(spec: &str) -> Result<Network, String> {
    if let Some(net) = zoo::by_name(spec) {
        return Ok(net);
    }
    if spec.ends_with(".net") || spec.contains('/') {
        let text = fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        return parse_network(&text).map_err(|e| format!("{spec}: {e}"));
    }
    Err(format!("unknown network `{spec}` (see `codesign list`, or pass a .net file)"))
}

/// Writes the requested trace/metrics sinks at the end of a run.
fn write_sinks(inv: &Invocation, tracer: &Tracer) -> Result<(), String> {
    if !tracer.is_enabled() {
        return Ok(());
    }
    let data = tracer.snapshot();
    if let Some(path) = &inv.trace {
        fs::write(path, chrome_trace(&data)).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("; wrote Chrome trace to {path} ({} spans)", data.span_count());
    }
    if let Some(path) = &inv.metrics {
        fs::write(path, MetricsSnapshot::of(&data).to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("; wrote metrics snapshot to {path}");
    }
    Ok(())
}

fn run(inv: &Invocation) -> Result<(), String> {
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    // One tracer for the whole invocation; disabled (zero-cost) unless a
    // sink was requested.
    let tracer = if inv.trace.is_some() || inv.metrics.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    if inv.action == Action::List {
        println!("model zoo:");
        for net in zoo::table_networks() {
            println!("  {net}");
        }
        for v in 1..=5 {
            println!("  {}", zoo::squeezenext_variant(v));
        }
        println!("  {}", zoo::squeezedet_trunk());
        return Ok(());
    }

    let cfg = inv.config().map_err(|e| e.to_string())?;
    let net = load_network(inv.network.as_deref().expect("non-list commands have a network"))?;

    match inv.action {
        Action::Simulate => {
            let mc = MultiCoreConfig { core: cfg.clone(), cores: inv.cores };
            let perf = if inv.cores > 1 {
                simulate_network_multicore(&net, &mc, inv.policy, opts)
            } else {
                simulate_network_batched(&net, &cfg, inv.policy, opts, inv.batch)
            };
            // Batched/multi-core runs bypass the Simulator handle, so the
            // per-layer spans are recorded post hoc.
            record_network(&tracer, &net, &perf, &cfg, inv.policy);
            let per_image = perf.total_cycles() as f64 / inv.batch as f64;
            println!("{net}");
            println!("hardware: {cfg} x{} core(s), {} policy", inv.cores, inv.policy);
            println!("cycles:      {} ({} per image)", perf.total_cycles(), per_image as u64);
            println!("time:        {:.3} ms/image", cfg.cycles_to_ms(per_image as u64));
            println!("energy:      {:.1} MMAC-eq", perf.total_energy(&energy) / 1e6);
            println!(
                "utilization: {:.1}%",
                100.0 * perf.average_utilization(cfg.pe_count() * inv.cores)
            );
        }
        Action::Schedule => {
            let schedule = NetworkSchedule::build(&net, &cfg, opts);
            println!(
                "{:<26} {:>6} {:>12} {:>12} {:>8} {:>7}",
                "layer", "class", "WS cycles", "OS cycles", "chosen", "util"
            );
            for e in &schedule.entries {
                println!(
                    "{:<26} {:>6} {:>12} {:>12} {:>8} {:>6.1}%",
                    e.name,
                    e.class.to_string(),
                    e.ws_cycles,
                    e.os_cycles,
                    e.chosen.map_or("SIMD", |d| d.tag()),
                    100.0 * e.utilization
                );
            }
            println!("total: {} cycles", schedule.total_cycles());
        }
        Action::Compile => {
            let program = Program::compile(&net, &cfg, inv.policy, opts);
            print!("{}", program.listing());
            println!("; {} commands, {} cycles replayed", program.len(), program.estimate(&cfg));
        }
        Action::Compare => {
            let sim = Simulator::new().with_tracer(tracer.clone());
            let c = ArchitectureComparison::evaluate_with(&sim, &net, &cfg, opts, energy);
            println!("{c}");
        }
        Action::Sweep => {
            let sim = Simulator::new().with_tracer(tracer.clone());
            let started = std::time::Instant::now();
            let points = codesign_core::sweep_with(
                &sim,
                &net,
                &SweepSpace::paper_default(),
                opts,
                &energy,
                inv.jobs,
            )
            .map_err(|e| e.to_string())?;
            let wall = started.elapsed();
            println!("{:<18} {:>12} {:>14} {:>8}", "design", "cycles", "energy (MMAC)", "util");
            for p in &points {
                println!(
                    "{:<18} {:>12} {:>14.1} {:>7.1}%",
                    p.params.to_string(),
                    p.cycles,
                    p.energy / 1e6,
                    100.0 * p.utilization
                );
            }
            if let Some(best) = best_by_energy_delay(&points) {
                println!("best energy-delay: {}", best.params);
            }
            eprintln!(
                "; swept {} point(s) in {:.1} ms on {} thread(s); sim cache: {}",
                points.len(),
                wall.as_secs_f64() * 1e3,
                codesign_sim::resolve_jobs(inv.jobs),
                sim.stats()
            );
        }
        Action::Wave => {
            let layer_name = inv.layer.as_deref().expect("wave requires a layer");
            let layer = net
                .layer(layer_name)
                .ok_or_else(|| format!("no layer `{layer_name}` in {}", net.name()))?;
            let work = ConvWork::from_layer(layer)
                .ok_or_else(|| format!("`{layer_name}` is not a PE-array layer"))?;
            let (_, _, best) = compare_dataflows(layer, &cfg, opts);
            let trace = match best {
                codesign_arch::Dataflow::WeightStationary => {
                    cycle::trace_ws_recorded(&work, &cfg, &tracer)
                }
                codesign_arch::Dataflow::OutputStationary => {
                    cycle::trace_os_recorded(&work, &cfg, opts.os, &tracer)
                }
            };
            print!("{}", cycle::trace_to_vcd(&trace, layer_name));
            eprintln!(
                "; {} on {}: {} cycles, {} segments",
                layer_name,
                best,
                trace.cycles(),
                trace.segments().len()
            );
        }
        Action::List => unreachable!("handled above"),
    }
    write_sinks(inv, &tracer)
}
