//! `codesign` — command-line front end to the co-design toolkit.
//!
//! ```text
//! codesign simulate squeezenet-v1.0
//! codesign schedule mobilenet --array 16
//! codesign compile my_model.net --arch os
//! codesign compare squeezenext
//! codesign sweep tiny-darknet
//! codesign list
//! ```

mod args;
mod faultserve;
mod jsonval;
mod serve;

use std::fs;
use std::process::ExitCode;

use codesign_arch::EnergyModel;
use codesign_core::{
    best_by_energy_delay, ArchitectureComparison, CheckpointConfig, FrontierConfig, FrontierEvent,
    NetworkSchedule, SweepSpace,
};
use codesign_dnn::{parse_network, zoo, Network};
use codesign_sim::{
    atomic_write, cycle, record_network, run_corpus, try_compare_dataflows,
    try_simulate_network_batched, try_simulate_network_multicore, validate_network, ConvWork,
    MultiCoreConfig, Program, SimOptions, Simulator,
};
use codesign_trace::{chrome_trace, MetricsSnapshot, Tracer};

use args::{parse_args, Action, Invocation, USAGE};

/// Exit code 2: the simulator rejected the workload or configuration
/// with a typed error (preflight validation, infeasible tiling,
/// overflow-scale shapes), or the fault-injection corpus failed.
const EXIT_REJECTED: u8 = 2;

/// A failed run, classified for the process exit code: `Usage` exits 1
/// (bad arguments, unknown networks, I/O), `Rejected` exits 2 (the
/// simulator refused the workload with a typed error).
enum RunError {
    Usage(String),
    Rejected(String),
}

impl RunError {
    fn rejected(e: impl std::fmt::Display) -> Self {
        RunError::Rejected(e.to_string())
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return if argv.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    let inv = match parse_args(argv) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("codesign: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(RunError::Usage(e)) => {
            eprintln!("codesign: {e}");
            ExitCode::FAILURE
        }
        Err(RunError::Rejected(e)) => {
            eprintln!("codesign: {e}");
            ExitCode::from(EXIT_REJECTED)
        }
    }
}

fn load_network(spec: &str) -> Result<Network, RunError> {
    if let Some(net) = zoo::by_name(spec) {
        return Ok(net);
    }
    if spec.ends_with(".net") || spec.contains('/') {
        let text = fs::read_to_string(spec)
            .map_err(|e| RunError::Usage(format!("cannot read {spec}: {e}")))?;
        // A file that exists but does not describe a valid network is an
        // input-rejection (exit 2), not a usage error.
        return parse_network(&text).map_err(|e| RunError::Rejected(format!("{spec}: {e}")));
    }
    Err(RunError::Usage(format!(
        "unknown network `{spec}` (see `codesign list`, or pass a .net file)"
    )))
}

/// Warm-starts `sim` from `--cache-load`, if given. A missing file is a
/// usage error (exit 1); a refused snapshot — wrong magic, version, or
/// checksum — is a rejection (exit 2), like any other invalid input.
fn preload_cache(sim: &Simulator, inv: &Invocation) -> Result<(), RunError> {
    if let Some(path) = &inv.cache_load {
        let bytes =
            fs::read(path).map_err(|e| RunError::Usage(format!("cannot read {path}: {e}")))?;
        let stats = sim
            .load_cache_snapshot(&bytes)
            .map_err(|e| RunError::Rejected(format!("{path}: {e}")))?;
        eprintln!("; warm-started from {path} ({} cache entries)", stats.entries());
    }
    Ok(())
}

/// Saves `sim`'s cache to `--cache-save`, if given. The write is
/// atomic: a crash mid-save leaves the previous snapshot (or no file),
/// never a torn one.
fn save_cache(sim: &Simulator, inv: &Invocation) -> Result<(), RunError> {
    if let Some(path) = &inv.cache_save {
        let snap = sim.cache_snapshot().map_err(|e| RunError::Rejected(e.to_string()))?;
        atomic_write(std::path::Path::new(path), &snap)
            .map_err(|e| RunError::Usage(format!("cannot write {path}: {e}")))?;
        eprintln!("; saved cache snapshot to {path} ({} bytes)", snap.len());
    }
    Ok(())
}

/// The bounded-memory streaming sweep behind `codesign sweep --frontier`
/// (and the flags that imply it). Stdout carries only the deterministic
/// final product — the frontier table and the best-energy-delay line —
/// and is byte-identical whether the run was chunked, pruned, resumed
/// after a crash, or none of those. Progress, frontier deltas, and
/// counters go to stderr as `;`-prefixed notes.
fn run_frontier_sweep(
    sim: &Simulator,
    net: &Network,
    inv: &Invocation,
    opts: SimOptions,
    energy: &EnergyModel,
) -> Result<(), RunError> {
    let mut space = SweepSpace::paper_default();
    if let Some(arrays) = &inv.arrays {
        space.array_sizes = arrays.clone();
    }
    if let Some(rfs) = &inv.rfs {
        space.rf_depths = rfs.clone();
    }
    if let Some(buffers) = &inv.buffers_kib {
        space.buffer_bytes = buffers.iter().map(|kb| kb * 1024).collect();
    }
    let checkpoint = match &inv.checkpoint {
        Some(base) => {
            let base = std::path::PathBuf::from(base);
            // A 10M-point sweep must not die at its first checkpoint
            // because the target directory does not exist yet.
            if let Some(parent) = base.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(|e| {
                    RunError::Usage(format!(
                        "creating checkpoint directory {}: {e}",
                        parent.display()
                    ))
                })?;
            }
            Some(CheckpointConfig { base, every_points: inv.checkpoint_every, keep: 3 })
        }
        None => None,
    };
    let config = FrontierConfig {
        jobs: inv.jobs,
        chunk: inv.chunk.unwrap_or(64),
        prune: inv.prune,
        checkpoint,
        resume: inv.resume,
        ..FrontierConfig::default()
    };
    let started = std::time::Instant::now();
    let outcome = codesign_core::sweep_frontier_with(
        sim,
        net,
        &space,
        opts,
        energy,
        &config,
        &codesign_sim::CancelToken::never(),
        |event| match event {
            FrontierEvent::Entered { index, point } => {
                eprintln!(
                    "; frontier[{index}] {} cycles={} energy={:.1} area={:.1}",
                    point.params,
                    point.cycles,
                    point.energy / 1e6,
                    point.area
                );
            }
            FrontierEvent::Failure { index, failure } => eprintln!("; failed[{index}] {failure}"),
            FrontierEvent::Pruned { from, until } => {
                eprintln!("; pruned[{from}..{until}] dominated segment ({} points)", until - from);
            }
        },
    )
    .map_err(|e| RunError::Usage(e.to_string()))?;
    let wall = started.elapsed();
    let c = outcome.counters;
    if let (Some(pos), Some(generation)) = (c.resumed_at, c.resumed_generation) {
        eprintln!(
            "; resumed from checkpoint generation {generation} at point {pos} of {}",
            c.total
        );
    }
    println!(
        "{:<18} {:>12} {:>14} {:>8} {:>10}",
        "design", "cycles", "energy (MMAC)", "util", "area"
    );
    for p in &outcome.frontier {
        println!(
            "{:<18} {:>12} {:>14.1} {:>7.1}% {:>10.1}",
            p.params.to_string(),
            p.cycles,
            p.energy / 1e6,
            100.0 * p.utilization,
            p.area
        );
    }
    if let Some(best) = &outcome.best {
        println!("best energy-delay: {}", best.params);
    }
    if c.failed > 0 {
        eprintln!(
            "; {} point(s) failed ({} diagnostic(s) retained):",
            c.failed,
            outcome.failures.len()
        );
        for f in &outcome.failures {
            eprintln!(";   {f}");
        }
    }
    eprintln!(
        "; swept {} of {} point(s) ({} pruned, {} skipped, {} failed) in {:.1} ms on {} thread(s)",
        c.evaluated,
        c.total,
        c.pruned,
        c.skipped,
        c.failed,
        wall.as_secs_f64() * 1e3,
        codesign_sim::resolve_jobs(inv.jobs),
    );
    eprintln!(
        "; frontier {} (peak {}); {} checkpoint(s) written; sim cache: {}",
        outcome.frontier.len(),
        c.peak_frontier,
        c.checkpoints_written,
        sim.stats()
    );
    Ok(())
}

/// Writes the requested trace/metrics sinks at the end of a run.
fn write_sinks(inv: &Invocation, tracer: &Tracer) -> Result<(), RunError> {
    if !tracer.is_enabled() {
        return Ok(());
    }
    let data = tracer.snapshot();
    if let Some(path) = &inv.trace {
        atomic_write(std::path::Path::new(path), chrome_trace(&data).as_bytes())
            .map_err(|e| RunError::Usage(format!("cannot write {path}: {e}")))?;
        eprintln!("; wrote Chrome trace to {path} ({} spans)", data.span_count());
    }
    if let Some(path) = &inv.metrics {
        atomic_write(std::path::Path::new(path), MetricsSnapshot::of(&data).to_json().as_bytes())
            .map_err(|e| RunError::Usage(format!("cannot write {path}: {e}")))?;
        eprintln!("; wrote metrics snapshot to {path}");
    }
    Ok(())
}

/// `verify-functional`: runs every network once with the GEMM executor
/// (timed, for the MACs/sec headline) and once per dataflow with the
/// accelerator-schedule executors, asserting whole-network bit-equality
/// against the reference operators. Any mismatch names the first
/// differing layer and the command exits 2.
fn verify_functional(
    nets: &[Network],
    cfg: &codesign_arch::AcceleratorConfig,
    opts: SimOptions,
    jobs: usize,
) -> Result<(), RunError> {
    use codesign_arch::{Dataflow, DataflowPolicy};
    use codesign_tensor::{run_network_reference, run_network_with, Tensor, WeightStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut failures: Vec<String> = Vec::new();
    let mut total_macs = 0u64;
    let mut total_secs = 0f64;
    println!(
        "{:<22} {:>12} {:>5} {:>5} {:>5} {:>10}",
        "network", "MACs", "gemm", "WS", "OS", "MMAC/s"
    );
    for net in nets {
        let mut rng = StdRng::seed_from_u64(2018);
        let weights = WeightStore::random(net, 8, 0.4, &mut rng);
        let image = Tensor::random(net.input(), 64, &mut rng);
        let reference = run_network_reference(net, &image, &weights).map_err(RunError::rejected)?;

        let started = std::time::Instant::now();
        let gemm = run_network_with(net, &image, &weights, jobs).map_err(RunError::rejected)?;
        let secs = started.elapsed().as_secs_f64();
        let macs = net.total_macs();
        total_macs += macs;
        total_secs += secs;

        let gemm_ok = first_mismatch(&reference, &gemm).is_none();
        if let Some(layer) = first_mismatch(&reference, &gemm) {
            failures.push(format!("{}: GEMM executor diverges at `{layer}`", net.name()));
        }
        let mut flow_ok = [true; 2];
        for (i, flow) in
            [Dataflow::WeightStationary, Dataflow::OutputStationary].into_iter().enumerate()
        {
            let acts = codesign_sim::run_network_on_accelerator_jobs(
                net,
                &image,
                &weights,
                cfg,
                DataflowPolicy::Fixed(flow),
                opts,
                jobs,
            )
            .map_err(RunError::rejected)?;
            if let Some(layer) = first_mismatch(&reference, &acts) {
                failures.push(format!(
                    "{}: {} schedule diverges at `{layer}`",
                    net.name(),
                    flow.tag()
                ));
                flow_ok[i] = false;
            }
        }
        println!(
            "{:<22} {:>12} {:>5} {:>5} {:>5} {:>10.1}",
            net.name(),
            macs,
            if gemm_ok { "ok" } else { "FAIL" },
            if flow_ok[0] { "ok" } else { "FAIL" },
            if flow_ok[1] { "ok" } else { "FAIL" },
            macs as f64 / secs.max(1e-9) / 1e6,
        );
    }
    println!(
        "functional throughput: {:.1} MMAC/s over {} network(s) ({} MACs in {:.2} s)",
        total_macs as f64 / total_secs.max(1e-9) / 1e6,
        nets.len(),
        total_macs,
        total_secs,
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(RunError::Rejected(failures.join("; ")))
    }
}

/// First layer whose output differs between two activation sets, if any.
fn first_mismatch(
    want: &codesign_tensor::NetworkActivations,
    got: &codesign_tensor::NetworkActivations,
) -> Option<String> {
    for (name, tensor) in want.iter() {
        match got.get(name) {
            Some(other) if other == tensor => {}
            _ => return Some(name.to_owned()),
        }
    }
    None
}

fn run(inv: &Invocation) -> Result<(), RunError> {
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    // One tracer for the whole invocation; disabled (zero-cost) unless a
    // sink was requested.
    let tracer = if inv.trace.is_some() || inv.metrics.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    if inv.action == Action::List {
        println!("model zoo:");
        for net in zoo::table_networks() {
            println!("  {net}");
        }
        for v in 1..=5 {
            println!("  {}", zoo::squeezenext_variant(v));
        }
        println!("  {}", zoo::squeezedet_trunk());
        return Ok(());
    }

    if inv.action == Action::Serve {
        return serve::run_serve(inv);
    }

    if inv.action == Action::Faultinject {
        let report = run_corpus(&tracer);
        print!("{}", report.render());
        let mut passed = report.passed();
        if inv.serve_faults {
            let serve_report = faultserve::run_serve_corpus();
            print!("{}", serve_report.render());
            passed &= serve_report.passed();
        }
        write_sinks(inv, &tracer)?;
        if !passed {
            return Err(RunError::Rejected("fault-injection corpus failed".to_owned()));
        }
        return Ok(());
    }

    let cfg = inv.config().map_err(|e| RunError::Usage(e.to_string()))?;

    if inv.action == Action::VerifyFunctional {
        let nets = match inv.network.as_deref() {
            Some(spec) => vec![load_network(spec)?],
            None => zoo::table_networks(),
        };
        return verify_functional(&nets, &cfg, opts, inv.jobs);
    }

    let Some(spec) = inv.network.as_deref() else {
        return Err(RunError::Usage("this command needs a network".to_owned()));
    };
    let net = load_network(spec)?;
    // Pre-flight: reject workloads the cycle models cannot represent
    // before any simulation starts, with the offending layer named.
    validate_network(&net, &cfg).map_err(RunError::rejected)?;

    match inv.action {
        Action::Simulate => {
            let mc = MultiCoreConfig { core: cfg.clone(), cores: inv.cores };
            let perf = if inv.cores > 1 {
                try_simulate_network_multicore(&net, &mc, inv.policy, opts)
                    .map_err(RunError::rejected)?
            } else {
                try_simulate_network_batched(&net, &cfg, inv.policy, opts, inv.batch)
                    .map_err(RunError::rejected)?
            };
            // Batched/multi-core runs bypass the Simulator handle, so the
            // per-layer spans are recorded post hoc.
            record_network(&tracer, &net, &perf, &cfg, inv.policy);
            let per_image = perf.total_cycles() as f64 / inv.batch as f64;
            println!("{net}");
            println!("hardware: {cfg} x{} core(s), {} policy", inv.cores, inv.policy);
            println!("cycles:      {} ({} per image)", perf.total_cycles(), per_image as u64);
            println!("time:        {:.3} ms/image", cfg.cycles_to_ms(per_image as u64));
            println!("energy:      {:.1} MMAC-eq", perf.total_energy(&energy) / 1e6);
            println!(
                "utilization: {:.1}%",
                100.0 * perf.average_utilization(cfg.pe_count() * inv.cores)
            );
        }
        Action::Schedule => {
            let schedule = NetworkSchedule::build(&net, &cfg, opts);
            println!(
                "{:<26} {:>6} {:>12} {:>12} {:>8} {:>7}",
                "layer", "class", "WS cycles", "OS cycles", "chosen", "util"
            );
            for e in &schedule.entries {
                println!(
                    "{:<26} {:>6} {:>12} {:>12} {:>8} {:>6.1}%",
                    e.name,
                    e.class.to_string(),
                    e.ws_cycles,
                    e.os_cycles,
                    e.chosen.map_or("SIMD", |d| d.tag()),
                    100.0 * e.utilization
                );
            }
            println!("total: {} cycles", schedule.total_cycles());
        }
        Action::Compile => {
            let program =
                Program::try_compile(&net, &cfg, inv.policy, opts).map_err(RunError::rejected)?;
            print!("{}", program.listing());
            println!("; {} commands, {} cycles replayed", program.len(), program.estimate(&cfg));
        }
        Action::Compare => {
            let sim = Simulator::new().with_tracer(tracer.clone());
            preload_cache(&sim, inv)?;
            let c = ArchitectureComparison::evaluate_with(&sim, &net, &cfg, opts, energy);
            println!("{c}");
            save_cache(&sim, inv)?;
        }
        Action::Sweep if inv.frontier_mode() => {
            let sim = Simulator::new().with_tracer(tracer.clone());
            preload_cache(&sim, inv)?;
            run_frontier_sweep(&sim, &net, inv, opts, &energy)?;
            save_cache(&sim, inv)?;
        }
        Action::Sweep => {
            let sim = Simulator::new().with_tracer(tracer.clone());
            preload_cache(&sim, inv)?;
            let started = std::time::Instant::now();
            let outcome = codesign_core::sweep_full_with(
                &sim,
                &net,
                &SweepSpace::paper_default(),
                opts,
                &energy,
                inv.jobs,
            )
            .map_err(|e| RunError::Usage(e.to_string()))?;
            let points = &outcome.points;
            let wall = started.elapsed();
            println!("{:<18} {:>12} {:>14} {:>8}", "design", "cycles", "energy (MMAC)", "util");
            for p in points {
                println!(
                    "{:<18} {:>12} {:>14.1} {:>7.1}%",
                    p.params.to_string(),
                    p.cycles,
                    p.energy / 1e6,
                    100.0 * p.utilization
                );
            }
            if let Some(best) = best_by_energy_delay(points) {
                println!("best energy-delay: {}", best.params);
            }
            // Degraded points are reported, not fatal: the sweep still
            // exits 0 with the surviving results.
            if !outcome.failures.is_empty() {
                eprintln!("; {}", outcome.failure_summary());
                for f in &outcome.failures {
                    eprintln!(";   {f}");
                }
            }
            eprintln!(
                "; swept {} point(s) in {:.1} ms on {} thread(s); sim cache: {}",
                points.len(),
                wall.as_secs_f64() * 1e3,
                codesign_sim::resolve_jobs(inv.jobs),
                sim.stats()
            );
            save_cache(&sim, inv)?;
        }
        Action::Wave => {
            let Some(layer_name) = inv.layer.as_deref() else {
                return Err(RunError::Usage("wave requires a layer".to_owned()));
            };
            let layer = net.layer(layer_name).ok_or_else(|| {
                RunError::Usage(format!("no layer `{layer_name}` in {}", net.name()))
            })?;
            let work = ConvWork::from_layer(layer).ok_or_else(|| {
                RunError::Usage(format!("`{layer_name}` is not a PE-array layer"))
            })?;
            let (_, _, best) =
                try_compare_dataflows(layer, &cfg, opts).map_err(RunError::rejected)?;
            let trace = match best {
                codesign_arch::Dataflow::WeightStationary => {
                    cycle::trace_ws_recorded(&work, &cfg, &tracer)
                }
                codesign_arch::Dataflow::OutputStationary => {
                    cycle::trace_os_recorded(&work, &cfg, opts.os, &tracer)
                }
            };
            cycle::write_vcd(
                &trace,
                layer_name,
                cycle::VcdGranularity::Segment,
                std::io::stdout().lock(),
            )
            .map_err(|e| RunError::Usage(format!("cannot write VCD: {e}")))?;
            eprintln!(
                "; {} on {}: {} cycles, {} macro-segments ({} steps)",
                layer_name,
                best,
                trace.cycles(),
                trace.segments().len(),
                trace.steps()
            );
        }
        Action::List | Action::Faultinject | Action::Serve | Action::VerifyFunctional => {
            unreachable!("handled above")
        }
    }
    write_sinks(inv, &tracer)
}
