//! `codesign serve` — co-design as a service.
//!
//! A dependency-free TCP server speaking line-delimited JSON: one
//! request object per line in, one or more response objects per line
//! out, every response echoing the request's `id`. All connections
//! share one memoizing [`Simulator`], so overlapping queries from
//! different clients hit the same cache, and *identical* in-flight
//! queries are deduplicated: the first request computes, concurrent
//! duplicates subscribe to its (streamed) output instead of simulating
//! again.
//!
//! ## Protocol
//!
//! Requests (`id` is echoed verbatim and may be any JSON value):
//!
//! ```text
//! {"id":1,"cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8],"buffers_kib":[64]}
//! {"id":2,"cmd":"simulate","network":"squeezenet-v1.1","arch":"ws","array":16}
//! {"id":3,"cmd":"codesign","network":"mobilenet","deadline_ms":500}
//! {"id":4,"cmd":"stats"}   {"id":5,"cmd":"ping"}   {"id":6,"cmd":"shutdown"}
//! ```
//!
//! Responses: `sweep` streams `"event":"frontier"` lines — Pareto-
//! frontier *deltas*, emitted the moment a completed point enters the
//! running (cycles, energy, area) frontier — then one `"event":"done"`
//! summary. Every other command answers with a single `done` (or
//! `error`) line. Errors carry `"code":"usage"` or `"code":"rejected"`,
//! mirroring the one-shot CLI's exit codes 1 and 2, plus three
//! server-side codes: `"deadline"` (the request's compute budget ran
//! out — any frontier deltas already streamed are a bit-identical
//! prefix of the uncancelled run), `"overloaded"` (no connection slot
//! free; retry later), and `"internal"` (the request thread panicked;
//! the server keeps serving).
//!
//! ## Hardening
//!
//! * Request lines longer than `--max-line-bytes` answer one `usage`
//!   error and are discarded without ever being accumulated in memory.
//! * `--max-connections` bounds concurrent connections; excess
//!   connections get one `overloaded` line and are closed immediately.
//! * `--deadline-ms` bounds per-request compute; requests may lower
//!   (never raise) it with their own `deadline_ms` field.
//! * With `--autosave-every N --cache-save PATH`, the cache is
//!   atomically snapshotted into rotating `PATH.gen-K` files every N
//!   requests; `--cache-load PATH` recovers the newest generation that
//!   validates end-to-end, refusing torn or corrupt ones
//!   (`serve.snapshot.refused` counts them).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign_core::{
    sweep_frontier_with, ArchitectureComparison, FrontierConfig, FrontierEvent, SweepError,
    SweepSpace,
};
use codesign_dnn::Network;
use codesign_sim::{
    aggregate_cache_stats, atomic_write, pool_size, recover_cache, resolve_jobs, scan_generations,
    validate_network, write_generation, CancelToken, SimOptions, Simulator,
};
use codesign_trace::Tracer;

use crate::args::Invocation;
use crate::jsonval::{escape, Value};
use crate::{load_network, RunError};

/// Generations kept on disk by the autosave rotation.
const GENERATIONS_KEPT: usize = 3;

/// How long a response write may stall on a slow client before the
/// connection is declared dead.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Mutex lock that shrugs off poisoning: the guarded state is always
/// internally consistent between operations.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything `serve` needs, decoupled from CLI argument parsing so the
/// fault-injection corpus can run servers in-process.
pub struct ServeOptions {
    /// TCP port (`0` = ephemeral).
    pub port: u16,
    /// Sweep fan-out width.
    pub jobs: usize,
    /// Snapshot file (plus `.gen-K` siblings) to warm-start from.
    pub cache_load: Option<String>,
    /// Snapshot file to save to at shutdown (and the autosave base).
    pub cache_save: Option<String>,
    /// Server-wide per-request compute budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Longest accepted request line.
    pub max_line_bytes: usize,
    /// Concurrent connection slots.
    pub max_connections: usize,
    /// Autosave period in handled requests (`0` = off).
    pub autosave_every: u64,
    /// Suppress the stdout handshake and stderr chatter (in-process
    /// fault-corpus servers must not pollute the CLI's output).
    pub quiet: bool,
}

impl ServeOptions {
    /// The options a `codesign serve` invocation selects.
    pub fn from_invocation(inv: &Invocation) -> Self {
        Self {
            port: inv.port,
            jobs: inv.jobs,
            cache_load: inv.cache_load.clone(),
            cache_save: inv.cache_save.clone(),
            deadline_ms: inv.deadline_ms,
            max_line_bytes: inv.max_line_bytes,
            max_connections: inv.max_connections,
            autosave_every: inv.autosave_every,
            quiet: false,
        }
    }
}

/// Rotating-generation autosave cursor, serialized so two request
/// threads can't snapshot concurrently ([`maybe_autosave`] skips when
/// the lock is held — the other thread is already saving).
struct AutosaveState {
    base: PathBuf,
    next_generation: u64,
}

/// The output buffer of one in-flight (or just-finished) computation.
/// The leader pushes response fragments as they are produced; followers
/// replay the buffer and wait on the condvar for more.
#[derive(Default)]
struct Inflight {
    state: Mutex<InflightBuffer>,
    cv: Condvar,
}

#[derive(Default)]
struct InflightBuffer {
    /// Response bodies (JSON object innards, without the `id` field):
    /// each subscriber wraps them with its own request id.
    fragments: Vec<String>,
    done: bool,
}

impl Inflight {
    fn push(&self, body: String) {
        lock(&self.state).fragments.push(body);
        self.cv.notify_all();
    }

    fn finish(&self) {
        lock(&self.state).done = true;
        self.cv.notify_all();
    }
}

/// State shared by every connection thread.
struct ServerState {
    sim: Simulator,
    tracer: Tracer,
    jobs: usize,
    addr: SocketAddr,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    requests: AtomicU64,
    deduped: AtomicU64,
    /// Requests fully handled — the autosave clock.
    completed: AtomicU64,
    /// Connections currently being served (admission control).
    active: AtomicUsize,
    shutdown: AtomicBool,
    deadline_ms: Option<u64>,
    max_line_bytes: usize,
    autosave_every: u64,
    autosave: Option<Mutex<AutosaveState>>,
    quiet: bool,
}

/// Runs the server until a `shutdown` request arrives (CLI entry).
pub fn run_serve(inv: &Invocation) -> Result<(), RunError> {
    run_serve_opts(&ServeOptions::from_invocation(inv), |_| {})
}

/// Runs the server with explicit options; `on_ready` observes the bound
/// address after the listener is up (used by the in-process fault
/// corpus, which cannot parse the stdout handshake).
pub fn run_serve_opts(
    opts: &ServeOptions,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<(), RunError> {
    let sim = Simulator::new();
    let tracer = Tracer::enabled();
    if let Some(path) = &opts.cache_load {
        load_with_recovery(&sim, &tracer, path, opts.quiet)?;
    }
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| RunError::Usage(format!("cannot bind 127.0.0.1:{}: {e}", opts.port)))?;
    let addr =
        listener.local_addr().map_err(|e| RunError::Usage(format!("cannot resolve port: {e}")))?;
    if !opts.quiet {
        // The port line is the startup handshake: clients (and the CI
        // smoke test) parse it to learn an ephemeral port, so
        // print-and-flush before accepting.
        println!("codesign serve listening on {addr}");
        let _ = std::io::stdout().flush();
    }
    on_ready(addr);

    let autosave = opts.cache_save.as_ref().filter(|_| opts.autosave_every > 0).map(|base| {
        let base = PathBuf::from(base);
        // Resume the generation numbering where a previous run left off,
        // so a restart never overwrites a generation it might need.
        let next_generation = scan_generations(&base).last().map_or(1, |(g, _)| g + 1);
        Mutex::new(AutosaveState { base, next_generation })
    });
    let state = Arc::new(ServerState {
        sim,
        tracer,
        jobs: opts.jobs,
        addr,
        inflight: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        deduped: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        deadline_ms: opts.deadline_ms,
        max_line_bytes: opts.max_line_bytes,
        autosave_every: opts.autosave_every,
        autosave,
        quiet: opts.quiet,
    });

    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Reap finished connection threads as we go: under connection
        // churn the handle list stays bounded by the live connections.
        reap_finished(&mut handles);
        if state.active.load(Ordering::SeqCst) >= opts.max_connections {
            fast_reject_overloaded(stream, &state);
            continue;
        }
        state.active.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || {
            handle_connection(stream, &state);
            state.active.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    // Connection reads time out periodically and re-check the shutdown
    // flag, so this join is bounded even with idle clients attached.
    for h in handles {
        let _ = h.join();
    }

    if let Some(path) = &opts.cache_save {
        let snap = state.sim.cache_snapshot().map_err(|e| RunError::Rejected(e.to_string()))?;
        atomic_write(Path::new(path), &snap)
            .map_err(|e| RunError::Usage(format!("cannot write {path}: {e}")))?;
        // Keep the newest generation at least as fresh as the base file:
        // recovery prefers generations, so a stale one must not shadow
        // the shutdown snapshot.
        if let Some(auto) = &state.autosave {
            let st = lock(auto);
            let _ = write_generation(&st.base, st.next_generation, &snap, GENERATIONS_KEPT);
        }
        if !state.quiet {
            eprintln!("; saved cache snapshot to {path} ({} bytes)", snap.len());
        }
    }
    Ok(())
}

/// Warm-starts from the newest valid snapshot among `path` and its
/// generation files. Refused (torn/corrupt) candidates are logged and
/// counted (`serve.snapshot.refused`), never loaded; the run only fails
/// when nothing loads: exit 1 when no candidate exists at all, exit 2
/// when every candidate was refused.
fn load_with_recovery(
    sim: &Simulator,
    tracer: &Tracer,
    path: &str,
    quiet: bool,
) -> Result<(), RunError> {
    let recovery = recover_cache(sim, Path::new(path))
        .map_err(|e| RunError::Usage(format!("cannot read {path}: {e}")))?;
    if !recovery.refused.is_empty() {
        tracer.add_counter("serve.snapshot.refused", recovery.refused.len() as u64);
        if !quiet {
            for r in &recovery.refused {
                eprintln!("; refused snapshot {}: {}", r.path.display(), r.reason);
            }
        }
    }
    match recovery.loaded {
        Some(loaded) => {
            if !quiet {
                eprintln!(
                    "; warm-started from {} ({} cache entries)",
                    loaded.path.display(),
                    loaded.stats.entries()
                );
            }
            Ok(())
        }
        None => Err(RunError::Rejected(format!(
            "{path}: all {} snapshot candidate(s) refused",
            recovery.refused.len()
        ))),
    }
}

/// Joins every connection thread that has already exited.
fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Answers one `overloaded` error line and drops the connection: the
/// client learns immediately instead of queueing behind a full house.
fn fast_reject_overloaded(stream: TcpStream, state: &ServerState) {
    state.tracer.add_counter("serve.overloaded", 1);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = ConnWriter { stream, dead: false };
    writer.send(
        "null",
        &error_body("overloaded", "no connection slot free (--max-connections); retry later"),
    );
}

/// A response writer that latches dead on the first write failure, so a
/// vanished or stalled client stops costing syscalls while the leader
/// keeps computing for its followers.
struct ConnWriter {
    stream: TcpStream,
    dead: bool,
}

impl ConnWriter {
    /// One response line: the subscriber's `id` wrapped around a shared
    /// body.
    fn send(&mut self, id_json: &str, body: &str) {
        if self.dead {
            return;
        }
        if writeln!(self.stream, "{{\"id\":{id_json},{body}}}").is_err() {
            self.dead = true;
        }
    }
}

/// What one bounded-line read step produced.
enum ReadOutcome {
    /// A complete line within the size budget.
    Line(String),
    /// The line under construction exceeded the budget; its remaining
    /// bytes are being discarded (one `Overflow` per oversized line).
    Overflow,
    /// The read timed out — re-check the shutdown flag.
    Tick,
    /// The peer closed (or the socket errored).
    Eof,
}

/// Reads one newline-terminated line of at most `max` bytes without ever
/// buffering more than `max` bytes of it: a client streaming a gigabyte
/// line costs one error response and zero accumulation. `line` carries
/// the partial line across timeout ticks; `discarding` is the
/// oversized-line skip state.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    discarding: &mut bool,
    max: usize,
) -> ReadOutcome {
    loop {
        let available = match reader.fill_buf() {
            Ok([]) => return ReadOutcome::Eof,
            Ok(buf) => buf.to_vec(),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                return ReadOutcome::Tick
            }
            Err(_) => return ReadOutcome::Eof,
        };
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                if *discarding {
                    // End of an oversized line that already answered its
                    // one error: swallow silently, start the next line.
                    *discarding = false;
                    line.clear();
                    continue;
                }
                if line.len() + i > max {
                    line.clear();
                    return ReadOutcome::Overflow;
                }
                line.extend_from_slice(&available[..i]);
                let text = String::from_utf8_lossy(line).into_owned();
                line.clear();
                return ReadOutcome::Line(text);
            }
            None => {
                let n = available.len();
                reader.consume(n);
                if *discarding {
                    continue;
                }
                if line.len() + n > max {
                    line.clear();
                    *discarding = true;
                    return ReadOutcome::Overflow;
                }
                line.extend_from_slice(&available);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    // Periodic read timeouts keep the thread responsive to shutdown even
    // when the client goes quiet with the connection open; the write
    // timeout bounds how long a stalled client can block a response.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = ConnWriter { stream: write_half, dead: false };
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        match read_bounded_line(&mut reader, &mut line, &mut discarding, state.max_line_bytes) {
            ReadOutcome::Line(text) => {
                let text = text.trim();
                if !text.is_empty() && handle_request(text, &mut writer, state) {
                    break;
                }
            }
            ReadOutcome::Overflow => {
                state.tracer.add_counter("serve.overflow", 1);
                writer.send(
                    "null",
                    &error_body(
                        "usage",
                        &format!(
                            "request line exceeds --max-line-bytes ({})",
                            state.max_line_bytes
                        ),
                    ),
                );
            }
            ReadOutcome::Tick => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            ReadOutcome::Eof => break,
        }
        if writer.dead {
            break;
        }
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!("\"event\":\"error\",\"code\":{},\"message\":{}", escape(code), escape(message))
}

/// Handles one request line. Returns `true` when the connection should
/// close (shutdown).
fn handle_request(text: &str, writer: &mut ConnWriter, state: &ServerState) -> bool {
    let req = match Value::parse(text) {
        Ok(v @ Value::Obj(_)) => v,
        Ok(_) => {
            writer.send("null", &error_body("usage", "request must be a JSON object"));
            return false;
        }
        Err(e) => {
            writer.send("null", &error_body("usage", &e.to_string()));
            return false;
        }
    };
    let id_json = req.get("id").map_or_else(|| "null".to_owned(), Value::to_json);
    state.requests.fetch_add(1, Ordering::SeqCst);
    let cmd = req.get("cmd").and_then(Value::as_str).unwrap_or("").to_owned();
    state
        .tracer
        .add_counter(&format!("serve.requests.{}", if cmd.is_empty() { "?" } else { &cmd }), 1);
    let close = match cmd.as_str() {
        "ping" => {
            writer.send(&id_json, "\"event\":\"done\",\"cmd\":\"ping\",\"ok\":true");
            false
        }
        "stats" => {
            writer.send(&id_json, &stats_body(state));
            false
        }
        "shutdown" => {
            writer.send(&id_json, "\"event\":\"done\",\"cmd\":\"shutdown\",\"ok\":true");
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(state.addr);
            true
        }
        // `__panic__` is the always-compiled fault-injection hook proving
        // the catch_unwind isolation below: it panics mid-request like a
        // latent bug would.
        "sweep" | "simulate" | "codesign" | "__panic__" => {
            let isolated = catch_unwind(AssertUnwindSafe(|| {
                #[allow(clippy::panic)]
                if cmd == "__panic__" {
                    panic!("injected request panic");
                }
                match parse_deadline(&req, state) {
                    Ok(deadline_ms) => match Compute::parse(&cmd, &req) {
                        Ok(compute) => run_compute(compute, deadline_ms, &id_json, writer, state),
                        Err((code, message)) => writer.send(&id_json, &error_body(&code, &message)),
                    },
                    Err(message) => writer.send(&id_json, &error_body("usage", &message)),
                }
            }));
            if isolated.is_err() {
                state.tracer.add_counter("serve.internal", 1);
                writer.send(
                    &id_json,
                    &error_body("internal", "request thread panicked; the server is still serving"),
                );
            }
            false
        }
        other => {
            writer.send(
                &id_json,
                &error_body(
                    "usage",
                    &format!(
                        "unknown cmd `{other}` (sweep, simulate, codesign, stats, ping, shutdown)"
                    ),
                ),
            );
            false
        }
    };
    let completed = state.completed.fetch_add(1, Ordering::SeqCst) + 1;
    if state.autosave_every > 0 && completed.is_multiple_of(state.autosave_every) {
        maybe_autosave(state);
    }
    close
}

/// The effective deadline: the request's `deadline_ms` capped at the
/// server's `--deadline-ms` (a client may lower its budget, never raise
/// it past the server's).
fn parse_deadline(req: &Value, state: &ServerState) -> Result<Option<u64>, String> {
    let requested = match req.get("deadline_ms") {
        None => None,
        Some(v) => {
            Some(v.as_usize().map(|ms| ms as u64).ok_or("`deadline_ms` must be a whole number")?)
        }
    };
    Ok(match (state.deadline_ms, requested) {
        (Some(server), Some(client)) => Some(server.min(client)),
        (server, client) => server.or(client),
    })
}

/// Best-effort cache autosave into the next rotating generation file.
/// Never fatal: a failed autosave is logged and the next period retries.
/// `try_lock` keeps at most one snapshotting thread; a contending
/// request skips (the in-progress save is at least as fresh).
fn maybe_autosave(state: &ServerState) {
    let Some(auto) = &state.autosave else { return };
    let Ok(mut st) = auto.try_lock() else { return };
    let snap = match state.sim.cache_snapshot() {
        Ok(snap) => snap,
        Err(e) => {
            if !state.quiet {
                eprintln!("; autosave skipped: {e}");
            }
            return;
        }
    };
    match write_generation(&st.base, st.next_generation, &snap, GENERATIONS_KEPT) {
        Ok(path) => {
            state.tracer.add_counter("serve.autosave", 1);
            if !state.quiet {
                eprintln!("; autosaved cache to {} ({} bytes)", path.display(), snap.len());
            }
            st.next_generation += 1;
        }
        Err(e) => {
            if !state.quiet {
                eprintln!("; autosave failed: {e}");
            }
        }
    }
}

fn stats_body(state: &ServerState) -> String {
    let cache = aggregate_cache_stats([&state.sim]);
    let inflight = lock(&state.inflight).len();
    let counters = state.tracer.snapshot().counters;
    let counters_json: Vec<String> =
        counters.iter().map(|(name, v)| format!("{}:{v}", escape(name))).collect();
    format!(
        "\"event\":\"done\",\"cmd\":\"stats\",\"requests\":{},\"deduped\":{},\"inflight\":{inflight},\"active\":{},\"pool_size\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"contended\":{}}},\"counters\":{{{}}}",
        state.requests.load(Ordering::SeqCst),
        state.deduped.load(Ordering::SeqCst),
        state.active.load(Ordering::SeqCst),
        pool_size(),
        cache.hits,
        cache.misses,
        cache.entries,
        cache.contended,
        counters_json.join(",")
    )
}

/// A fully-validated compute request, normalized enough that two
/// textually different but semantically identical requests produce the
/// same dedup key.
enum Compute {
    Sweep { spec: String, network: Network, space: SweepSpace, chunk: Option<usize>, prune: bool },
    Simulate { spec: String, network: Network, policy: DataflowPolicy, cfg: AcceleratorConfig },
    Codesign { spec: String, network: Network, cfg: AcceleratorConfig },
}

impl Compute {
    /// Parses and validates the request. Errors are `(code, message)`
    /// with the same usage/rejected split as the one-shot CLI.
    fn parse(cmd: &str, req: &Value) -> Result<Compute, (String, String)> {
        let usage = |m: String| ("usage".to_owned(), m);
        let spec = req
            .get("network")
            .and_then(Value::as_str)
            .ok_or_else(|| usage("`network` is required".to_owned()))?
            .to_owned();
        let network = load_network(&spec).map_err(|e| match e {
            RunError::Usage(m) => ("usage".to_owned(), m),
            RunError::Rejected(m) => ("rejected".to_owned(), m),
        })?;
        if cmd == "sweep" {
            let default = SweepSpace::paper_default();
            let axis = |key: &str, default: Vec<usize>, scale: usize| match req.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_arr()
                    .and_then(|items| {
                        items.iter().map(|x| x.as_usize().map(|n| n * scale)).collect()
                    })
                    .filter(|axis: &Vec<usize>| !axis.is_empty())
                    .ok_or_else(|| {
                        usage(format!("`{key}` must be a non-empty array of whole numbers"))
                    }),
            };
            let space = SweepSpace {
                array_sizes: axis("arrays", default.array_sizes.clone(), 1)?,
                rf_depths: axis("rfs", default.rf_depths.clone(), 1)?,
                buffer_bytes: axis("buffers_kib", default.buffer_bytes.clone(), 1024)?,
            };
            let chunk = match req.get("chunk") {
                None => None,
                Some(v) => Some(
                    v.as_usize()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| usage("`chunk` must be a whole number >= 1".to_owned()))?,
                ),
            };
            let prune = match req.get("prune") {
                None => false,
                Some(v) => {
                    v.as_bool().ok_or_else(|| usage("`prune` must be true or false".to_owned()))?
                }
            };
            return Ok(Compute::Sweep { spec, network, space, chunk, prune });
        }
        let policy = match req.get("arch").and_then(Value::as_str) {
            None | Some("hybrid") => DataflowPolicy::PerLayer,
            Some("ws") => DataflowPolicy::Fixed(Dataflow::WeightStationary),
            Some("os") => DataflowPolicy::Fixed(Dataflow::OutputStationary),
            Some(other) => {
                return Err(usage(format!("`arch` must be ws, os, or hybrid (got `{other}`)")))
            }
        };
        let mut b = AcceleratorConfig::builder();
        let dim = |key: &str| match req.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_usize()
                .map(Some)
                .ok_or_else(|| usage(format!("`{key}` must be a whole number"))),
        };
        if let Some(n) = dim("array")? {
            b.array_size(n);
        }
        if let Some(r) = dim("rf")? {
            b.rf_depth(r);
        }
        if let Some(kib) = dim("buffer_kib")? {
            b.global_buffer_bytes(kib * 1024);
        }
        let cfg = b.build().map_err(|e| usage(e.to_string()))?;
        // Same pre-flight as the one-shot CLI: a workload the cycle
        // models cannot represent is `rejected`, named layer and all.
        validate_network(&network, &cfg).map_err(|e| ("rejected".to_owned(), e.to_string()))?;
        if cmd == "simulate" {
            Ok(Compute::Simulate { spec, network, policy, cfg })
        } else {
            Ok(Compute::Codesign { spec, network, cfg })
        }
    }

    /// The dedup key: identical in-flight computations share one run.
    fn key(&self) -> String {
        match self {
            Compute::Sweep { spec, space, chunk, prune, .. } => format!(
                "sweep|{spec}|{:?}|{:?}|{:?}|chunk{chunk:?}|prune{prune}",
                space.array_sizes, space.rf_depths, space.buffer_bytes
            ),
            Compute::Simulate { spec, policy, cfg, .. } => {
                format!("simulate|{spec}|{policy:?}|{cfg}")
            }
            Compute::Codesign { spec, cfg, .. } => format!("codesign|{spec}|{cfg}"),
        }
    }
}

/// Leader-or-follower dispatch: the first request for a key computes
/// and publishes; concurrent identical requests replay its stream. A
/// panicking leader still finishes its group with an `internal` error,
/// so followers never hang on an abandoned buffer.
fn run_compute(
    compute: Compute,
    deadline_ms: Option<u64>,
    id_json: &str,
    writer: &mut ConnWriter,
    state: &ServerState,
) {
    // Deadline is part of the dedup key: a follower with a different
    // budget must not be handed a stream that was cancelled under (or
    // computed beyond) its own deadline.
    let key = match deadline_ms {
        Some(ms) => format!("{}|deadline{ms}", compute.key()),
        None => compute.key(),
    };
    let (inflight, leader) = {
        let mut map = lock(&state.inflight);
        match map.get(&key) {
            Some(inf) => (Arc::clone(inf), false),
            None => {
                let inf = Arc::new(Inflight::default());
                map.insert(key.clone(), Arc::clone(&inf));
                (inf, true)
            }
        }
    };
    if leader {
        let isolated = catch_unwind(AssertUnwindSafe(|| {
            compute_and_publish(&compute, deadline_ms, &inflight, id_json, writer, state)
        }));
        if isolated.is_err() {
            state.tracer.add_counter("serve.internal", 1);
            let body =
                error_body("internal", "request thread panicked; the server is still serving");
            writer.send(id_json, &body);
            inflight.push(body);
        }
        inflight.finish();
        lock(&state.inflight).remove(&key);
    } else {
        state.deduped.fetch_add(1, Ordering::SeqCst);
        state.tracer.add_counter("serve.dedup", 1);
        replay(&inflight, id_json, writer);
    }
}

/// Streams a finished-or-in-progress computation's fragments to one
/// follower, wrapped in its own request id.
fn replay(inflight: &Inflight, id_json: &str, writer: &mut ConnWriter) {
    let mut cursor = 0;
    loop {
        let (new, done) = {
            let mut st = lock(&inflight.state);
            while st.fragments.len() == cursor && !st.done {
                st = inflight.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            (st.fragments[cursor..].to_vec(), st.done)
        };
        for body in &new {
            writer.send(id_json, body);
        }
        cursor += new.len();
        if done {
            return;
        }
    }
}

fn compute_and_publish(
    compute: &Compute,
    deadline_ms: Option<u64>,
    inflight: &Inflight,
    id_json: &str,
    writer: &mut ConnWriter,
    state: &ServerState,
) {
    // Per-request observability: the worker fork shares the server's
    // cache but records spans/counters into a request-local tracer,
    // whose counters are folded into the server tracer at the end.
    let request_tracer = Tracer::enabled();
    let worker = state.sim.fork_counter().with_tracer(request_tracer.clone());
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    let cancel = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let deadline_error = |detail: &str| {
        let budget = deadline_ms.unwrap_or(0);
        error_body("deadline", &format!("deadline of {budget} ms exceeded{detail}"))
    };
    // Publish to the shared buffer (for followers) and this connection
    // in one step, so the leader streams exactly what followers replay.
    let mut emit = |body: String| {
        writer.send(id_json, &body);
        inflight.push(body);
    };
    let mut deadline_hit = false;
    match compute {
        Compute::Sweep { network, space, chunk, prune, .. } => {
            let mut deltas = 0usize;
            // Default chunk = one scheduling round: each batch of
            // workers flushes its frontier deltas before the next
            // starts. Requests can widen it (`chunk`) to give the
            // branch-and-bound (`prune`) larger segments to cut.
            let config = FrontierConfig {
                jobs: state.jobs,
                chunk: chunk.unwrap_or_else(|| resolve_jobs(state.jobs).max(1)),
                prune: *prune,
                ..FrontierConfig::default()
            };
            let result =
                sweep_frontier_with(&worker, network, space, opts, &energy, &config, &cancel, |event| {
                    match event {
                        FrontierEvent::Entered { index, point } => {
                            deltas += 1;
                            emit(format!(
                                "\"event\":\"frontier\",\"index\":{index},\"design\":{},\"cycles\":{},\"energy\":{},\"utilization\":{},\"area\":{}",
                                escape(&point.params.to_string()),
                                point.cycles,
                                point.energy,
                                point.utilization,
                                point.area
                            ));
                        }
                        FrontierEvent::Pruned { from, until } => {
                            emit(format!("\"event\":\"pruned\",\"from\":{from},\"until\":{until}"));
                        }
                        // Failures are aggregated into the done line, as
                        // before the streaming engine.
                        FrontierEvent::Failure { .. } => {}
                    }
                });
            match result {
                Ok(outcome) => {
                    let best = outcome
                        .best
                        .as_ref()
                        .map_or("null".to_owned(), |p| escape(&p.params.to_string()));
                    emit(format!(
                        "\"event\":\"done\",\"cmd\":\"sweep\",\"points\":{},\"failures\":{},\"pruned\":{},\"frontier\":{},\"best\":{best}",
                        outcome.counters.evaluated,
                        outcome.counters.failed,
                        outcome.counters.pruned,
                        outcome.frontier.len()
                    ));
                }
                Err(SweepError::Cancelled) => {
                    deadline_hit = true;
                    emit(deadline_error(&format!(
                        "; {deltas} frontier delta(s) already streamed are a prefix of the full run"
                    )));
                }
                Err(e) => emit(error_body("usage", &e.to_string())),
            }
        }
        Compute::Simulate { network, policy, cfg, .. } => {
            if cancel.is_cancelled() {
                deadline_hit = true;
                emit(deadline_error(" before simulation started"));
            } else {
                match worker.try_simulate_network(network, cfg, *policy, opts) {
                    Ok(perf) => emit(format!(
                        "\"event\":\"done\",\"cmd\":\"simulate\",\"cycles\":{},\"energy\":{},\"utilization\":{}",
                        perf.total_cycles(),
                        perf.total_energy(&energy),
                        perf.average_utilization(cfg.pe_count())
                    )),
                    Err(e) => emit(error_body("rejected", &e.to_string())),
                }
            }
        }
        Compute::Codesign { network, cfg, .. } => {
            match ArchitectureComparison::evaluate_cancellable_with(
                &worker, network, cfg, opts, energy, &cancel,
            ) {
                Some(c) => emit(format!(
                    "\"event\":\"done\",\"cmd\":\"codesign\",\"network\":{},\"hybrid_cycles\":{},\"ws_cycles\":{},\"os_cycles\":{},\"speedup_vs_ws\":{},\"speedup_vs_os\":{},\"energy_reduction_vs_ws\":{},\"energy_reduction_vs_os\":{}",
                    escape(&c.network),
                    c.hybrid.total_cycles(),
                    c.ws.total_cycles(),
                    c.os.total_cycles(),
                    c.speedup_vs_ws(),
                    c.speedup_vs_os(),
                    c.energy_reduction_vs_ws(),
                    c.energy_reduction_vs_os()
                )),
                None => {
                    deadline_hit = true;
                    emit(deadline_error(" between architecture evaluations"));
                }
            }
        }
    }
    if deadline_hit {
        state.tracer.add_counter("serve.deadline", 1);
    }
    state.tracer.absorb_counters(&request_tracer.snapshot());
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_core::{DesignParams, DesignPoint, OnlineFrontier};
    use std::io::Cursor;

    fn pt(cycles: u64, energy: f64, area: f64) -> DesignPoint {
        let params = DesignParams { array_size: 8, rf_depth: 8, global_buffer_bytes: 64 * 1024 };
        DesignPoint { params, cycles, energy, utilization: 0.5, area }
    }

    #[test]
    fn frontier_deltas_match_dominance() {
        // The serve sweep streams `OnlineFrontier` insertions as deltas;
        // pin the semantics it relies on, including the one deliberate
        // change from the old local helper: exact duplicates are kept
        // (and hence are deltas), matching `pareto_designs`.
        let mut frontier = OnlineFrontier::new();
        assert!(frontier.insert(&pt(100, 10.0, 1.0)), "first point always enters");
        assert!(frontier.insert(&pt(100, 10.0, 1.0)), "exact duplicates are kept as deltas");
        assert!(!frontier.insert(&pt(200, 20.0, 2.0)), "dominated point");
        assert!(frontier.insert(&pt(50, 20.0, 1.0)), "cycles trade-off enters");
        assert!(frontier.insert(&pt(40, 5.0, 0.5)), "dominating point enters");
        // The dominating point evicted every earlier member.
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.members()[0].cycles, 40);
        assert_eq!(frontier.peak(), 3, "both duplicates plus the trade-off were live at once");
    }

    /// Drains a reader through `read_bounded_line`, tagging each outcome.
    fn drain(input: &[u8], max: usize) -> Vec<String> {
        let mut reader = BufReader::with_capacity(8, Cursor::new(input.to_vec()));
        let mut line = Vec::new();
        let mut discarding = false;
        let mut out = Vec::new();
        loop {
            match read_bounded_line(&mut reader, &mut line, &mut discarding, max) {
                ReadOutcome::Line(text) => out.push(format!("line:{text}")),
                ReadOutcome::Overflow => out.push("overflow".to_owned()),
                ReadOutcome::Tick => out.push("tick".to_owned()),
                ReadOutcome::Eof => return out,
            }
        }
    }

    #[test]
    fn bounded_reader_passes_normal_lines() {
        assert_eq!(drain(b"hello\nworld\n", 64), vec!["line:hello", "line:world"]);
        assert_eq!(drain(b"", 64), Vec::<String>::new());
        // A trailing unterminated fragment is dropped at EOF, like the
        // old read_line loop did.
        assert_eq!(drain(b"complete\npartial", 64), vec!["line:complete"]);
    }

    #[test]
    fn bounded_reader_rejects_oversized_lines_once() {
        let long = vec![b'x'; 200];
        let mut input = long.clone();
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        // One Overflow for the oversized line, then normal service.
        assert_eq!(drain(&input, 64), vec!["overflow", "line:after"]);
    }

    #[test]
    fn bounded_reader_survives_binary_garbage() {
        // Non-UTF-8 bytes become replacement characters, to be rejected
        // by the JSON parser as a usage error rather than crashing.
        let out = drain(&[0xff, 0xfe, 0x80, b'\n'], 64);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("line:"), "{out:?}");
    }

    #[test]
    fn bounded_reader_never_accumulates_past_the_cap() {
        // A "gigabyte line" (scaled down): the line buffer never holds
        // more than max bytes however much the client streams.
        let mut input = vec![b'y'; 4096];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut reader = BufReader::with_capacity(16, Cursor::new(input));
        let mut line = Vec::new();
        let mut discarding = false;
        let mut overflows = 0;
        let mut lines = Vec::new();
        loop {
            match read_bounded_line(&mut reader, &mut line, &mut discarding, 100) {
                ReadOutcome::Line(text) => lines.push(text),
                ReadOutcome::Overflow => overflows += 1,
                ReadOutcome::Tick => {}
                ReadOutcome::Eof => break,
            }
            assert!(line.len() <= 100, "buffer stayed bounded");
        }
        assert_eq!(overflows, 1, "one error per oversized line");
        assert_eq!(lines, vec!["ok".to_owned()]);
    }
}
