//! `codesign serve` — co-design as a service.
//!
//! A dependency-free TCP server speaking line-delimited JSON: one
//! request object per line in, one or more response objects per line
//! out, every response echoing the request's `id`. All connections
//! share one memoizing [`Simulator`], so overlapping queries from
//! different clients hit the same cache, and *identical* in-flight
//! queries are deduplicated: the first request computes, concurrent
//! duplicates subscribe to its (streamed) output instead of simulating
//! again.
//!
//! ## Protocol
//!
//! Requests (`id` is echoed verbatim and may be any JSON value):
//!
//! ```text
//! {"id":1,"cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"rfs":[8],"buffers_kib":[64]}
//! {"id":2,"cmd":"simulate","network":"squeezenet-v1.1","arch":"ws","array":16}
//! {"id":3,"cmd":"codesign","network":"mobilenet"}
//! {"id":4,"cmd":"stats"}   {"id":5,"cmd":"ping"}   {"id":6,"cmd":"shutdown"}
//! ```
//!
//! Responses: `sweep` streams `"event":"frontier"` lines — Pareto-
//! frontier *deltas*, emitted the moment a completed point enters the
//! running (cycles, energy, area) frontier — then one `"event":"done"`
//! summary. Every other command answers with a single `done` (or
//! `error`) line. Errors carry `"code":"usage"` or `"code":"rejected"`,
//! mirroring the one-shot CLI's exit codes 1 and 2.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign_core::{
    best_by_energy_delay, sweep_streaming_with, ArchitectureComparison, DesignPoint, SweepEvent,
    SweepSpace,
};
use codesign_dnn::Network;
use codesign_sim::{
    aggregate_cache_stats, pool_size, resolve_jobs, validate_network, SimOptions, Simulator,
};
use codesign_trace::Tracer;

use crate::args::Invocation;
use crate::jsonval::{escape, Value};
use crate::{load_network, RunError};

/// Mutex lock that shrugs off poisoning: the guarded state is always
/// internally consistent between operations.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The output buffer of one in-flight (or just-finished) computation.
/// The leader pushes response fragments as they are produced; followers
/// replay the buffer and wait on the condvar for more.
#[derive(Default)]
struct Inflight {
    state: Mutex<InflightBuffer>,
    cv: Condvar,
}

#[derive(Default)]
struct InflightBuffer {
    /// Response bodies (JSON object innards, without the `id` field):
    /// each subscriber wraps them with its own request id.
    fragments: Vec<String>,
    done: bool,
}

impl Inflight {
    fn push(&self, body: String) {
        lock(&self.state).fragments.push(body);
        self.cv.notify_all();
    }

    fn finish(&self) {
        lock(&self.state).done = true;
        self.cv.notify_all();
    }
}

/// State shared by every connection thread.
struct ServerState {
    sim: Simulator,
    tracer: Tracer,
    jobs: usize,
    addr: SocketAddr,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    requests: AtomicU64,
    deduped: AtomicU64,
    shutdown: AtomicBool,
}

/// Runs the server until a `shutdown` request arrives.
pub fn run_serve(inv: &Invocation) -> Result<(), RunError> {
    let sim = Simulator::new();
    if let Some(path) = &inv.cache_load {
        let bytes =
            std::fs::read(path).map_err(|e| RunError::Usage(format!("cannot read {path}: {e}")))?;
        let stats = sim
            .load_cache_snapshot(&bytes)
            .map_err(|e| RunError::Rejected(format!("{path}: {e}")))?;
        eprintln!("; warm-started from {path} ({} cache entries)", stats.entries());
    }
    let listener = TcpListener::bind(("127.0.0.1", inv.port))
        .map_err(|e| RunError::Usage(format!("cannot bind 127.0.0.1:{}: {e}", inv.port)))?;
    let addr =
        listener.local_addr().map_err(|e| RunError::Usage(format!("cannot resolve port: {e}")))?;
    // The port line is the startup handshake: clients (and the CI smoke
    // test) parse it to learn an ephemeral port, so print-and-flush
    // before accepting.
    println!("codesign serve listening on {addr}");
    let _ = std::io::stdout().flush();

    let state = Arc::new(ServerState {
        sim,
        tracer: Tracer::enabled(),
        jobs: inv.jobs,
        addr,
        inflight: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        deduped: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    });

    let mut handles = Vec::new();
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || handle_connection(stream, &state)));
    }
    // Connection reads time out periodically and re-check the shutdown
    // flag, so this join is bounded even with idle clients attached.
    for h in handles {
        let _ = h.join();
    }

    if let Some(path) = &inv.cache_save {
        let snap = state.sim.cache_snapshot().map_err(|e| RunError::Rejected(e.to_string()))?;
        std::fs::write(path, &snap)
            .map_err(|e| RunError::Usage(format!("cannot write {path}: {e}")))?;
        eprintln!("; saved cache snapshot to {path} ({} bytes)", snap.len());
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    // Periodic read timeouts keep the thread responsive to shutdown even
    // when the client goes quiet with the connection open.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let text = line.trim().to_owned();
                line.clear();
                if !text.is_empty() && handle_request(&text, &mut writer, state) {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A partial line (no newline yet) stays accumulated in
                // `line`; just re-check the shutdown flag.
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// One response line: the subscriber's `id` wrapped around a shared
/// body. Write errors are ignored — a vanished client must not abort
/// the computation other subscribers are waiting on.
fn send(writer: &mut TcpStream, id_json: &str, body: &str) {
    let _ = writeln!(writer, "{{\"id\":{id_json},{body}}}");
}

fn error_body(code: &str, message: &str) -> String {
    format!("\"event\":\"error\",\"code\":{},\"message\":{}", escape(code), escape(message))
}

/// Handles one request line. Returns `true` when the connection should
/// close (shutdown).
fn handle_request(text: &str, writer: &mut TcpStream, state: &ServerState) -> bool {
    let req = match Value::parse(text) {
        Ok(v @ Value::Obj(_)) => v,
        Ok(_) => {
            send(writer, "null", &error_body("usage", "request must be a JSON object"));
            return false;
        }
        Err(e) => {
            send(writer, "null", &error_body("usage", &e.to_string()));
            return false;
        }
    };
    let id_json = req.get("id").map_or_else(|| "null".to_owned(), Value::to_json);
    state.requests.fetch_add(1, Ordering::SeqCst);
    let cmd = req.get("cmd").and_then(Value::as_str).unwrap_or("").to_owned();
    state
        .tracer
        .add_counter(&format!("serve.requests.{}", if cmd.is_empty() { "?" } else { &cmd }), 1);
    match cmd.as_str() {
        "ping" => {
            send(writer, &id_json, "\"event\":\"done\",\"cmd\":\"ping\",\"ok\":true");
            false
        }
        "stats" => {
            send(writer, &id_json, &stats_body(state));
            false
        }
        "shutdown" => {
            send(writer, &id_json, "\"event\":\"done\",\"cmd\":\"shutdown\",\"ok\":true");
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(state.addr);
            true
        }
        "sweep" | "simulate" | "codesign" => {
            match Compute::parse(&cmd, &req) {
                Ok(compute) => run_compute(compute, &id_json, writer, state),
                Err((code, message)) => send(writer, &id_json, &error_body(&code, &message)),
            }
            false
        }
        other => {
            send(
                writer,
                &id_json,
                &error_body(
                    "usage",
                    &format!(
                        "unknown cmd `{other}` (sweep, simulate, codesign, stats, ping, shutdown)"
                    ),
                ),
            );
            false
        }
    }
}

fn stats_body(state: &ServerState) -> String {
    let cache = aggregate_cache_stats([&state.sim]);
    let inflight = lock(&state.inflight).len();
    let counters = state.tracer.snapshot().counters;
    let counters_json: Vec<String> =
        counters.iter().map(|(name, v)| format!("{}:{v}", escape(name))).collect();
    format!(
        "\"event\":\"done\",\"cmd\":\"stats\",\"requests\":{},\"deduped\":{},\"inflight\":{inflight},\"pool_size\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"contended\":{}}},\"counters\":{{{}}}",
        state.requests.load(Ordering::SeqCst),
        state.deduped.load(Ordering::SeqCst),
        pool_size(),
        cache.hits,
        cache.misses,
        cache.entries,
        cache.contended,
        counters_json.join(",")
    )
}

/// A fully-validated compute request, normalized enough that two
/// textually different but semantically identical requests produce the
/// same dedup key.
enum Compute {
    Sweep { spec: String, network: Network, space: SweepSpace },
    Simulate { spec: String, network: Network, policy: DataflowPolicy, cfg: AcceleratorConfig },
    Codesign { spec: String, network: Network, cfg: AcceleratorConfig },
}

impl Compute {
    /// Parses and validates the request. Errors are `(code, message)`
    /// with the same usage/rejected split as the one-shot CLI.
    fn parse(cmd: &str, req: &Value) -> Result<Compute, (String, String)> {
        let usage = |m: String| ("usage".to_owned(), m);
        let spec = req
            .get("network")
            .and_then(Value::as_str)
            .ok_or_else(|| usage("`network` is required".to_owned()))?
            .to_owned();
        let network = load_network(&spec).map_err(|e| match e {
            RunError::Usage(m) => ("usage".to_owned(), m),
            RunError::Rejected(m) => ("rejected".to_owned(), m),
        })?;
        if cmd == "sweep" {
            let default = SweepSpace::paper_default();
            let axis = |key: &str, default: Vec<usize>, scale: usize| match req.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_arr()
                    .and_then(|items| {
                        items.iter().map(|x| x.as_usize().map(|n| n * scale)).collect()
                    })
                    .filter(|axis: &Vec<usize>| !axis.is_empty())
                    .ok_or_else(|| {
                        usage(format!("`{key}` must be a non-empty array of whole numbers"))
                    }),
            };
            let space = SweepSpace {
                array_sizes: axis("arrays", default.array_sizes.clone(), 1)?,
                rf_depths: axis("rfs", default.rf_depths.clone(), 1)?,
                buffer_bytes: axis("buffers_kib", default.buffer_bytes.clone(), 1024)?,
            };
            return Ok(Compute::Sweep { spec, network, space });
        }
        let policy = match req.get("arch").and_then(Value::as_str) {
            None | Some("hybrid") => DataflowPolicy::PerLayer,
            Some("ws") => DataflowPolicy::Fixed(Dataflow::WeightStationary),
            Some("os") => DataflowPolicy::Fixed(Dataflow::OutputStationary),
            Some(other) => {
                return Err(usage(format!("`arch` must be ws, os, or hybrid (got `{other}`)")))
            }
        };
        let mut b = AcceleratorConfig::builder();
        let dim = |key: &str| match req.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_usize()
                .map(Some)
                .ok_or_else(|| usage(format!("`{key}` must be a whole number"))),
        };
        if let Some(n) = dim("array")? {
            b.array_size(n);
        }
        if let Some(r) = dim("rf")? {
            b.rf_depth(r);
        }
        if let Some(kib) = dim("buffer_kib")? {
            b.global_buffer_bytes(kib * 1024);
        }
        let cfg = b.build().map_err(|e| usage(e.to_string()))?;
        // Same pre-flight as the one-shot CLI: a workload the cycle
        // models cannot represent is `rejected`, named layer and all.
        validate_network(&network, &cfg).map_err(|e| ("rejected".to_owned(), e.to_string()))?;
        if cmd == "simulate" {
            Ok(Compute::Simulate { spec, network, policy, cfg })
        } else {
            Ok(Compute::Codesign { spec, network, cfg })
        }
    }

    /// The dedup key: identical in-flight computations share one run.
    fn key(&self) -> String {
        match self {
            Compute::Sweep { spec, space, .. } => format!(
                "sweep|{spec}|{:?}|{:?}|{:?}",
                space.array_sizes, space.rf_depths, space.buffer_bytes
            ),
            Compute::Simulate { spec, policy, cfg, .. } => {
                format!("simulate|{spec}|{policy:?}|{cfg}")
            }
            Compute::Codesign { spec, cfg, .. } => format!("codesign|{spec}|{cfg}"),
        }
    }
}

/// Leader-or-follower dispatch: the first request for a key computes
/// and publishes; concurrent identical requests replay its stream.
fn run_compute(compute: Compute, id_json: &str, writer: &mut TcpStream, state: &ServerState) {
    let key = compute.key();
    let (inflight, leader) = {
        let mut map = lock(&state.inflight);
        match map.get(&key) {
            Some(inf) => (Arc::clone(inf), false),
            None => {
                let inf = Arc::new(Inflight::default());
                map.insert(key.clone(), Arc::clone(&inf));
                (inf, true)
            }
        }
    };
    if leader {
        compute_and_publish(&compute, &inflight, id_json, writer, state);
        inflight.finish();
        lock(&state.inflight).remove(&key);
    } else {
        state.deduped.fetch_add(1, Ordering::SeqCst);
        state.tracer.add_counter("serve.dedup", 1);
        replay(&inflight, id_json, writer);
    }
}

/// Streams a finished-or-in-progress computation's fragments to one
/// follower, wrapped in its own request id.
fn replay(inflight: &Inflight, id_json: &str, writer: &mut TcpStream) {
    let mut cursor = 0;
    loop {
        let (new, done) = {
            let mut st = lock(&inflight.state);
            while st.fragments.len() == cursor && !st.done {
                st = inflight.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            (st.fragments[cursor..].to_vec(), st.done)
        };
        for body in &new {
            send(writer, id_json, body);
        }
        cursor += new.len();
        if done {
            return;
        }
    }
}

fn compute_and_publish(
    compute: &Compute,
    inflight: &Inflight,
    id_json: &str,
    writer: &mut TcpStream,
    state: &ServerState,
) {
    // Per-request observability: the worker fork shares the server's
    // cache but records spans/counters into a request-local tracer,
    // whose counters are folded into the server tracer at the end.
    let request_tracer = Tracer::enabled();
    let worker = state.sim.fork_counter().with_tracer(request_tracer.clone());
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    // Publish to the shared buffer (for followers) and this connection
    // in one step, so the leader streams exactly what followers replay.
    let mut emit = |body: String| {
        send(writer, id_json, &body);
        inflight.push(body);
    };
    match compute {
        Compute::Sweep { network, space, .. } => {
            let mut frontier: Vec<DesignPoint> = Vec::new();
            // Chunk = one scheduling round: each batch of workers
            // flushes its frontier deltas before the next starts.
            let chunk = resolve_jobs(state.jobs).max(1);
            let result = sweep_streaming_with(
                &worker,
                network,
                space,
                opts,
                &energy,
                state.jobs,
                chunk,
                |event| {
                    if let SweepEvent::Point { index, point } = event {
                        if frontier_insert(&mut frontier, point) {
                            emit(format!(
                                "\"event\":\"frontier\",\"index\":{index},\"design\":{},\"cycles\":{},\"energy\":{},\"utilization\":{},\"area\":{}",
                                escape(&point.params.to_string()),
                                point.cycles,
                                point.energy,
                                point.utilization,
                                point.area
                            ));
                        }
                    }
                },
            );
            match result {
                Ok(outcome) => {
                    let best = best_by_energy_delay(&outcome.points)
                        .map_or("null".to_owned(), |p| escape(&p.params.to_string()));
                    emit(format!(
                        "\"event\":\"done\",\"cmd\":\"sweep\",\"points\":{},\"failures\":{},\"frontier\":{},\"best\":{best}",
                        outcome.points.len(),
                        outcome.failures.len(),
                        frontier.len()
                    ));
                }
                Err(e) => emit(error_body("usage", &e.to_string())),
            }
        }
        Compute::Simulate { network, policy, cfg, .. } => {
            match worker.try_simulate_network(network, cfg, *policy, opts) {
                Ok(perf) => emit(format!(
                    "\"event\":\"done\",\"cmd\":\"simulate\",\"cycles\":{},\"energy\":{},\"utilization\":{}",
                    perf.total_cycles(),
                    perf.total_energy(&energy),
                    perf.average_utilization(cfg.pe_count())
                )),
                Err(e) => emit(error_body("rejected", &e.to_string())),
            }
        }
        Compute::Codesign { network, cfg, .. } => {
            let c = ArchitectureComparison::evaluate_with(&worker, network, cfg, opts, energy);
            emit(format!(
                "\"event\":\"done\",\"cmd\":\"codesign\",\"network\":{},\"hybrid_cycles\":{},\"ws_cycles\":{},\"os_cycles\":{},\"speedup_vs_ws\":{},\"speedup_vs_os\":{},\"energy_reduction_vs_ws\":{},\"energy_reduction_vs_os\":{}",
                escape(&c.network),
                c.hybrid.total_cycles(),
                c.ws.total_cycles(),
                c.os.total_cycles(),
                c.speedup_vs_ws(),
                c.speedup_vs_os(),
                c.energy_reduction_vs_ws(),
                c.energy_reduction_vs_os()
            ));
        }
    }
    state.tracer.absorb_counters(&request_tracer.snapshot());
}

/// Inserts `p` into the running (cycles, energy, area) Pareto frontier.
/// Returns whether `p` is a frontier delta — not dominated by (or
/// duplicating) any current member. Dominated members are evicted, same
/// dominance as `pareto_designs`.
fn frontier_insert(frontier: &mut Vec<DesignPoint>, p: &DesignPoint) -> bool {
    let covered = |a: &DesignPoint, b: &DesignPoint| {
        a.cycles <= b.cycles && a.energy <= b.energy && a.area <= b.area
    };
    if frontier.iter().any(|q| covered(q, p)) {
        return false;
    }
    frontier.retain(|q| !covered(p, q));
    frontier.push(p.clone());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_core::DesignParams;

    fn pt(cycles: u64, energy: f64, area: f64) -> DesignPoint {
        let params = DesignParams { array_size: 8, rf_depth: 8, global_buffer_bytes: 64 * 1024 };
        DesignPoint { params, cycles, energy, utilization: 0.5, area }
    }

    #[test]
    fn frontier_deltas_match_dominance() {
        let mut frontier = Vec::new();
        assert!(frontier_insert(&mut frontier, &pt(100, 10.0, 1.0)), "first point always enters");
        assert!(!frontier_insert(&mut frontier, &pt(100, 10.0, 1.0)), "duplicates are not deltas");
        assert!(!frontier_insert(&mut frontier, &pt(200, 20.0, 2.0)), "dominated point");
        assert!(frontier_insert(&mut frontier, &pt(50, 20.0, 1.0)), "cycles trade-off enters");
        assert!(frontier_insert(&mut frontier, &pt(40, 5.0, 0.5)), "dominating point enters");
        // The dominating point evicted both earlier members.
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].cycles, 40);
    }
}
