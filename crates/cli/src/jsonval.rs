//! A minimal JSON value parser/writer for the serve protocol.
//!
//! The repo is dependency-free by policy, and the server speaks
//! line-delimited JSON, so this module provides the smallest JSON
//! surface the protocol needs: parse one request line into a [`Value`],
//! and re-serialize scalars (the request `id` echo). It is a strict
//! recursive-descent parser — no trailing garbage, no unquoted keys,
//! depth-capped against hostile nesting.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Nesting cap: a request line has no business nesting deeper than this,
/// and the recursive parser must not let a hostile line overflow the
/// connection thread's stack.
const MAX_DEPTH: usize = 64;

impl Value {
    /// Parses exactly one JSON value (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on any syntax error, depth overflow, or trailing
    /// non-whitespace.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and non-numbers).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value back to JSON text.
    pub fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_owned(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) if n.is_finite() => format!("{n}"),
            // JSON has no NaN/Infinity; null is the conventional fallback.
            Value::Num(_) => "null".to_owned(),
            Value::Str(s) => escape(s),
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_json).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Obj(fields) => {
                let inner: Vec<String> =
                    fields.iter().map(|(k, v)| format!("{}:{}", escape(k), v.to_json())).collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, what: what.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err(format!("bad number `{text}`")))?;
        if n.is_finite() {
            Ok(Value::Num(n))
        } else {
            Err(self.err(format!("number out of range `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; the protocol
                            // never emits them, so reject instead of
                            // silently mangling.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    if let Some(c) = rest.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_line() {
        let v = Value::parse(
            r#"{"id":"r1","cmd":"sweep","network":"tiny-darknet","arrays":[8,16],"jobs":2}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("jobs").and_then(Value::as_usize), Some(2));
        let arrays: Vec<usize> =
            v.get("arrays").unwrap().as_arr().unwrap().iter().filter_map(Value::as_usize).collect();
        assert_eq!(arrays, vec![8, 16]);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn scalars_and_escapes_round_trip() {
        for text in [r#""hi \"there\"\n""#, "null", "true", "false", "-12.5", "[1,[2,[3]]]"] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "{text}");
        }
        assert_eq!(Value::parse(r#""é""#).unwrap(), Value::Str("é".to_owned()));
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Value::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            r#"{"a" 1}"#,
            "nul",
            "1 2",
            "\"unterminated",
            "\u{1}",
            r#""\ud800""#,
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth cap: 100 nested arrays overflow the limit, not the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn as_usize_is_exact() {
        assert_eq!(Value::Num(3.0).as_usize(), Some(3));
        assert_eq!(Value::Num(3.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("3".to_owned()).as_usize(), None);
    }
}
