//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the small API subset it actually uses:
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`distributions::Uniform`]. Everything is
//! deterministic given a seed; the generator is xoshiro256++, which is
//! more than adequate for test-data generation (the only use here —
//! nothing in this workspace needs cryptographic randomness).
//!
//! Note: the streams differ from upstream `rand 0.8`, so seeds produce
//! different (but still deterministic and reproducible) data.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The generator interface: one required method, everything else derived.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        self.gen::<f64>() < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the `StdRng` stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform distributions (the `rand::distributions` subset).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Integer types [`Uniform`] can sample (mirrors upstream's
    /// `SampleUniform`, so `Uniform::new_inclusive(lo, hi)` infers `T`
    /// from its arguments instead of needing per-type inherent impls).
    pub trait SampleUniform: Copy + PartialOrd {
        /// One step below `self` (used to turn a half-open bound inclusive).
        fn pred(self) -> Self;
        /// Draws uniformly from `[low, high]`.
        fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn pred(self) -> Self {
                    self - 1
                }

                fn sample_inclusive<R: Rng + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                    rng.gen_range(low..=high)
                }
            }
        )*};
    }

    impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// Uniform distribution over an inclusive integer range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self { low, high: high.pred() }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Self { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_inclusive(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_inclusive_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = Uniform::new_inclusive(-2i32, 2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = dist.sample(&mut rng);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let _ = takes_impl(&mut rng);
        // Deliberately call through `&mut StdRng` to exercise the blanket impl.
        #[allow(clippy::needless_borrow)]
        let _ = (&mut rng).gen::<f64>();
    }
}
