//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map`, strategies for integer ranges / tuples / [`Just`] /
//! [`any`], the [`prop_oneof!`] combinator, and the [`proptest!`] test
//! macro with `prop_assert!` / `prop_assert_eq!` and
//! `#![proptest_config(...)]` support.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name) rather than a global RNG,
//! and failing inputs are reported but not shrunk. That keeps runs fully
//! reproducible, which the workspace's determinism tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one type (see [`prop_oneof!`]).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u32..2) == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Drives one `proptest!`-generated test: runs `cases` deterministic
/// cases, panicking with the case number and message on the first
/// failure.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Stable seed per test name so failures reproduce run to run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(i) << 32));
        if let Err(e) = case(&mut rng) {
            panic!("proptest case {i}/{} of `{test_name}` failed: {e}", config.cases);
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, AnyStrategy, Just, OneOf,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strategy),+])
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // The internal `@config` arms must come before the catch-all entry
    // arm, which would otherwise re-wrap them in `@config` forever.
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&$strategy, __proptest_rng);)+
                let __proptest_body = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                __proptest_body()
            });
        }
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let config = ProptestConfig::with_cases(100);
        crate::run_cases("strategies_generate_in_bounds", &config, |rng| {
            let v = (1usize..=8).generate(rng);
            prop_assert!((1..=8).contains(&v));
            let w = prop_oneof![Just(3usize), Just(5)].generate(rng);
            prop_assert!(w == 3 || w == 5);
            let (a, b) = (0u32..4, any::<bool>()).generate(rng);
            prop_assert!(a < 4);
            let _ = b;
            let m = (0usize..10).prop_map(|x| x * 2).generate(rng);
            prop_assert!(m % 2 == 0 && m < 20);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn macro_smoke(x in 1usize..=16, (lo, hi) in (0u32..5, 5u32..10)) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!(lo < hi, "lo {lo} < hi {hi}");
            prop_assert_eq!(x.wrapping_add(0), x);
            if x == 100 {
                return Ok(()); // early exit compiles
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_case_number() {
        let config = ProptestConfig::with_cases(5);
        crate::run_cases("failures_panic", &config, |_rng| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn same_name_reproduces_same_cases() {
        let config = ProptestConfig::with_cases(20);
        let mut a = Vec::new();
        crate::run_cases("repro", &config, |rng| {
            a.push((0u64..1_000_000).generate(rng));
            Ok(())
        });
        let mut b = Vec::new();
        crate::run_cases("repro", &config, |rng| {
            b.push((0u64..1_000_000).generate(rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
